package check

import (
	"compisa/internal/code"
)

// BB is one recovered basic block: instructions [Start, End) of the
// program, with successor/predecessor edges expressed as block indices.
type BB struct {
	Start, End  int
	Succs       []int
	Preds       []int
	// Reachable marks blocks reachable from the entry block.
	Reachable bool
}

// CFG is the control-flow graph recovered from a program's branch targets.
// Block 0 is the entry (it starts at instruction 0).
type CFG struct {
	Blocks []BB
	// blockOf maps an instruction index to the index of its containing
	// block.
	blockOf []int
}

// BlockOf returns the index of the block containing instruction i.
func (g *CFG) BlockOf(i int) int { return g.blockOf[i] }

// recoverCFG rebuilds basic blocks from branch targets: leaders are
// instruction 0, every branch target, and every instruction following a
// control transfer. It assumes branch targets are in range (the cfg rule
// checks that first; recoverCFG is only called when they are).
func recoverCFG(p *code.Program) *CFG {
	n := len(p.Instrs)
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case code.JCC, code.JMP:
			leader[in.Target] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case code.RET:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	g := &CFG{blockOf: make([]int, n)}
	start := 0
	for i := 0; i < n; i++ {
		if i > start && leader[i] {
			g.Blocks = append(g.Blocks, BB{Start: start, End: i})
			start = i
		}
	}
	if n > 0 {
		g.Blocks = append(g.Blocks, BB{Start: start, End: n})
	}
	for bi := range g.Blocks {
		for i := g.Blocks[bi].Start; i < g.Blocks[bi].End; i++ {
			g.blockOf[i] = bi
		}
	}
	// Edges.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := &p.Instrs[b.End-1]
		switch last.Op {
		case code.JMP:
			b.Succs = append(b.Succs, g.blockOf[last.Target])
		case code.JCC:
			b.Succs = append(b.Succs, g.blockOf[last.Target])
			if b.End < n {
				b.Succs = append(b.Succs, g.blockOf[b.End])
			}
		case code.RET:
			// No successors.
		default:
			if b.End < n {
				b.Succs = append(b.Succs, g.blockOf[b.End])
			}
		}
	}
	for bi := range g.Blocks {
		for _, s := range g.Blocks[bi].Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, bi)
		}
	}
	// Reachability from the entry block.
	if len(g.Blocks) > 0 {
		stack := []int{0}
		g.Blocks[0].Reachable = true
		for len(stack) > 0 {
			bi := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g.Blocks[bi].Succs {
				if !g.Blocks[s].Reachable {
					g.Blocks[s].Reachable = true
					stack = append(stack, s)
				}
			}
		}
	}
	return g
}
