// Package store is a crash-safe, content-addressed persistent store for
// evaluated design points: the durable tier under the evaluation service's
// in-memory caches. Keys are DesignPoint.CacheKey strings (a stable
// cross-host identity), values are opaque byte blobs (candidate JSON).
//
// Format: one append-only log file. An 8-byte magic header is followed by
// length-prefixed records:
//
//	uint32le payloadLen | uint32le crc32c(payload) | payload
//	payload = version(1) | uint32le keyLen | key | value
//
// The last record for a key wins. An in-memory index (key → offset) is
// rebuilt by scanning the log on open; values stay on disk and are
// re-checksummed on every read.
//
// Crash safety is by construction and proven by the chaos suite
// (chaos_test.go):
//
//   - appends go to the tracked end offset, never O_APPEND, so a torn
//     append is overwritten by the next one and a crash leaves it as a
//     torn tail;
//   - open truncates a torn tail at the first bad checksum instead of
//     failing, and quarantines corrupt mid-log records (skip + count,
//     never crash) when a valid successor record proves the log continues;
//   - fsync runs on configurable group-commit boundaries (SyncEvery); a
//     record is durable once Sync has returned nil after its append;
//   - compaction writes a new log, fsyncs it, atomically renames it over
//     the old one, and fsyncs the directory — a crash at any point leaves
//     either the complete old log or the complete new one.
//
// Every byte flows through the FS seam, so internal/fault's StoreInjector
// can tear writes, fail fsyncs, and kill the process at any mutating
// operation (see FaultFS).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"compisa/internal/fault"
)

// magic identifies a store log file; open refuses files that exist but
// carry other content (never clobber a foreign file).
const magic = "CPSTOR1\n"

// recordV1 is the current record payload version. Records with an unknown
// (future) version are skipped and counted, not an error: an old binary
// reopening a newer log serves what it understands.
const recordV1 = 1

// maxRecord bounds a single record's payload; a larger length field is
// treated as corruption.
const maxRecord = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrNotFound is returned by Get for an absent key.
var ErrNotFound = errors.New("store: key not found")

// Options configures Open. The zero value selects the documented defaults.
type Options struct {
	// FS is the filesystem seam (default OSFS{}).
	FS FS
	// SyncEvery is the group-commit boundary: fsync after every N appends
	// (default 1 — every acknowledged Put is durable). Larger values batch
	// fsyncs; records appended since the last sync are lost on a crash and
	// that loss is within contract (they were never acknowledged durable).
	SyncEvery int
	// Log, if set, receives recovery and compaction events.
	Log func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	return o
}

// Recovery reports what open found: how much of the log survived, and what
// had to be discarded or skipped to make it consistent.
type Recovery struct {
	// Records is the number of live keys indexed (last write per key wins).
	Records int
	// Appends is the number of valid records scanned, including
	// superseded ones (compaction garbage).
	Appends int
	// Quarantined is the number of corrupt mid-log records skipped.
	Quarantined int
	// TruncatedBytes is the size of the torn tail discarded.
	TruncatedBytes int64
}

func (r Recovery) String() string {
	return fmt.Sprintf("%d records (%d appends, %d quarantined, %d torn bytes)",
		r.Records, r.Appends, r.Quarantined, r.TruncatedBytes)
}

// recLoc locates one record's payload in the log.
type recLoc struct {
	off    int64 // payload offset (past the 8-byte record header)
	plen   int   // payload length
	keyLen int
}

// Store is the crash-safe design-point store. All methods are safe for
// concurrent use.
type Store struct {
	mu       sync.Mutex
	opts     Options
	fs       FS
	path     string
	f        File
	size     int64 // append offset (end of last valid record)
	pending  int   // appends since the last successful fsync
	index    map[string]recLoc
	appends  int // valid records scanned or written this lineage
	recovery Recovery
	closed   bool
}

// storeErr wraps an I/O failure into the fault taxonomy: StageStore,
// transient (the device may recover; the serving layer degrades to
// memory-only rather than failing evaluations).
func storeErr(op string, err error) error {
	return &fault.Error{Stage: fault.StageStore, Transient: true,
		Err: fmt.Errorf("store: %s: %w", op, err)}
}

// corruptErr wraps a data-integrity failure: StageStore but not transient
// (rereading corrupt bytes will not help).
func corruptErr(op string, err error) error {
	return &fault.Error{Stage: fault.StageStore,
		Err: fmt.Errorf("store: %s: %w", op, err)}
}

// Open opens (creating if absent) the log at path and rebuilds the index.
// Open never fails on a torn or partially corrupt log: the torn tail is
// truncated, corrupt mid-log records are quarantined, and the recovery
// report says what happened. It does fail on foreign file content, or when
// the file cannot be opened at all.
func Open(path string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		opts:  opts,
		fs:    opts.FS,
		path:  path,
		index: map[string]recLoc{},
	}
	s.removeStaleTemps()
	f, err := s.fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, storeErr("open "+path, err)
	}
	s.f = f
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	s.recovery.Records = len(s.index)
	s.recovery.Appends = s.appends
	if s.recovery.Quarantined > 0 || s.recovery.TruncatedBytes > 0 {
		s.logf("store: recovered %s: %s", path, s.recovery)
	}
	return s, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log(format, args...)
	}
}

// removeStaleTemps deletes compaction temporaries a crash left behind.
func (s *Store) removeStaleTemps() {
	pattern := filepath.Join(filepath.Dir(s.path), filepath.Base(s.path)+".compact-*")
	stale, err := filepath.Glob(pattern)
	if err != nil {
		return
	}
	for _, t := range stale {
		if err := s.fs.Remove(t); err == nil {
			s.logf("store: removed stale compaction temp %s", t)
		}
	}
}

// recover scans the log, building the index and repairing the tail.
func (s *Store) recover() error {
	var hdr [8]byte
	n, err := s.f.ReadAt(hdr[:], 0)
	if err != nil && err != io.EOF {
		return storeErr("read header", err)
	}
	switch {
	case n == 0:
		// Fresh (or fully torn-away) file: write the header.
		return s.writeHeader()
	case n < len(hdr):
		// A crash tore the header write itself; no record can follow a
		// partial header, so reset the file.
		s.recovery.TruncatedBytes = int64(n)
		if err := s.f.Truncate(0); err != nil {
			return storeErr("truncate torn header", err)
		}
		return s.writeHeader()
	}
	if string(hdr[:]) != magic {
		return corruptErr("open", fmt.Errorf("%s is not a design-point store (bad magic)", s.path))
	}
	off := int64(len(magic))
	for {
		loc, next, ok := s.readRecordAt(off)
		if !ok {
			// Torn or unrecoverable tail: cut the log at the last good
			// record. Everything before off stays intact.
			end, tornErr := s.tailSize(off)
			if tornErr != nil {
				return tornErr
			}
			if end > off {
				s.recovery.TruncatedBytes = end - off
				if err := s.f.Truncate(off); err != nil {
					return storeErr("truncate torn tail", err)
				}
			}
			break
		}
		if loc.plen < 0 {
			// Quarantined record (corrupt payload or future version with a
			// valid successor): skip it, keep scanning.
			s.recovery.Quarantined++
			off = next
			continue
		}
		key, kerr := s.readKey(loc)
		if kerr != nil {
			return kerr
		}
		s.index[key] = loc
		s.appends++
		off = next
	}
	s.size = off
	return nil
}

// writeHeader initializes an empty log. It counts as a mutating write but
// is not group-committed: the header must be durable before any record.
func (s *Store) writeHeader() error {
	if _, err := s.f.WriteAt([]byte(magic), 0); err != nil {
		return storeErr("write header", err)
	}
	if err := s.f.Sync(); err != nil {
		return storeErr("sync header", err)
	}
	s.size = int64(len(magic))
	return nil
}

// readRecordAt parses the record at off. Returns (loc, nextOff, true) for
// a usable record; (loc with plen == -1, nextOff, true) for a record to
// quarantine-skip; ok == false when the bytes at off cannot be a record
// whose log continues — the torn-tail case.
func (s *Store) readRecordAt(off int64) (recLoc, int64, bool) {
	plen, crc, ok := s.readRecordHeader(off)
	if !ok {
		return recLoc{}, 0, false
	}
	payload := make([]byte, plen)
	if n, err := s.f.ReadAt(payload, off+8); n < plen || (err != nil && err != io.EOF) {
		return recLoc{}, 0, false // payload cut short: torn tail
	}
	next := off + 8 + int64(plen)
	if crc32.Checksum(payload, castagnoli) != crc {
		// Corrupt payload. Mid-log (a valid record follows): quarantine.
		// Otherwise it is the torn tail.
		if s.validRecordAt(next) {
			return recLoc{plen: -1}, next, true
		}
		return recLoc{}, 0, false
	}
	ver := payload[0]
	if ver != recordV1 {
		// Future format version: skip it (forward compatibility), whether
		// or not anything follows — its checksum proves it is intact.
		return recLoc{plen: -1}, next, true
	}
	keyLen := int(binary.LittleEndian.Uint32(payload[1:5]))
	if keyLen < 0 || 5+keyLen > plen {
		// Checksummed but self-inconsistent: quarantine, never crash.
		return recLoc{plen: -1}, next, true
	}
	return recLoc{off: off + 8, plen: plen, keyLen: keyLen}, next, true
}

// readRecordHeader reads and sanity-checks the 8-byte record header.
func (s *Store) readRecordHeader(off int64) (plen int, crc uint32, ok bool) {
	var hdr [8]byte
	if n, err := s.f.ReadAt(hdr[:], off); n < len(hdr) || (err != nil && err != io.EOF) {
		return 0, 0, false
	}
	plen = int(binary.LittleEndian.Uint32(hdr[0:4]))
	if plen <= 0 || plen > maxRecord {
		// An implausible length field means the header itself is damaged;
		// record boundaries past it are unknowable, so the scan treats it
		// as the torn tail.
		return 0, 0, false
	}
	return plen, binary.LittleEndian.Uint32(hdr[4:8]), true
}

// validRecordAt reports whether a complete, checksum-valid record starts
// at off (the one-record lookahead distinguishing mid-log corruption from
// the torn tail).
func (s *Store) validRecordAt(off int64) bool {
	plen, crc, ok := s.readRecordHeader(off)
	if !ok {
		return false
	}
	payload := make([]byte, plen)
	if n, err := s.f.ReadAt(payload, off+8); n < plen || (err != nil && err != io.EOF) {
		return false
	}
	return crc32.Checksum(payload, castagnoli) == crc
}

// tailSize measures how many bytes exist at and after off (the torn tail
// about to be discarded), by probing reads; the File seam has no Stat.
func (s *Store) tailSize(off int64) (int64, error) {
	end := off
	buf := make([]byte, 32*1024)
	for {
		n, err := s.f.ReadAt(buf, end)
		end += int64(n)
		if err == io.EOF {
			return end, nil
		}
		if err != nil {
			return 0, storeErr("measure torn tail", err)
		}
		if n == 0 {
			return end, nil
		}
	}
}

// readKey extracts the key of an indexed record.
func (s *Store) readKey(loc recLoc) (string, error) {
	key := make([]byte, loc.keyLen)
	if _, err := s.f.ReadAt(key, loc.off+5); err != nil && err != io.EOF {
		return "", storeErr("read key", err)
	}
	return string(key), nil
}

// encodeRecord renders one record (header + payload).
func encodeRecord(key string, val []byte) []byte {
	plen := 1 + 4 + len(key) + len(val)
	rec := make([]byte, 8+plen)
	payload := rec[8:]
	payload[0] = recordV1
	binary.LittleEndian.PutUint32(payload[1:5], uint32(len(key)))
	copy(payload[5:], key)
	copy(payload[5+len(key):], val)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(plen))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	return rec
}

// Put appends one record and group-commits. When Put returns nil the
// record is readable from this process; it is durable once the commit
// boundary's fsync has succeeded (immediately, with SyncEvery == 1). A
// failed append does not advance the log: the next Put overwrites the torn
// bytes, and a reopen truncates them.
func (s *Store) Put(key string, val []byte) error {
	if len(key) == 0 {
		return corruptErr("put", errors.New("empty key"))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	rec := encodeRecord(key, val)
	if int64(len(rec)-8) > maxRecord {
		return corruptErr("put", fmt.Errorf("record of %d bytes exceeds limit %d", len(rec)-8, maxRecord))
	}
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return storeErr("append", err)
	}
	loc := recLoc{off: s.size + 8, plen: len(rec) - 8, keyLen: len(key)}
	s.size += int64(len(rec))
	s.appends++
	s.pending++
	// The record is visible (indexed) even if the group commit below
	// fails: this process can read it back, it is just not durable yet —
	// the next successful sync covers it.
	s.index[key] = loc
	if s.pending >= s.opts.SyncEvery {
		return s.syncLocked()
	}
	return nil
}

// Sync forces the group commit: every acknowledged Put is durable once
// Sync returns nil.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.pending == 0 {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		// Keep pending non-zero: the next boundary retries the fsync, and
		// callers know these records are not yet durable.
		return storeErr("sync", err)
	}
	s.pending = 0
	return nil
}

// Get returns the value for key. The payload is re-checksummed on read, so
// bit rot since open surfaces as a corruption error, never as bad data.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	loc, ok := s.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	return s.readValueLocked(key, loc)
}

func (s *Store) readValueLocked(key string, loc recLoc) ([]byte, error) {
	payload := make([]byte, loc.plen)
	if _, err := s.f.ReadAt(payload, loc.off); err != nil && err != io.EOF {
		return nil, storeErr("read "+key, err)
	}
	var hdr [8]byte
	if _, err := s.f.ReadAt(hdr[:], loc.off-8); err != nil && err != io.EOF {
		return nil, storeErr("read "+key, err)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, corruptErr("read "+key, errors.New("checksum mismatch"))
	}
	return payload[5+loc.keyLen:], nil
}

// Len reports the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Keys returns the live keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Range calls fn for every live (key, value) pair in sorted key order,
// stopping at the first error. Corrupt values are reported to fn's error
// path via the returned error.
func (s *Store) Range(fn func(key string, val []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		val, err := s.readValueLocked(k, s.index[k])
		if err != nil {
			return err
		}
		if err := fn(k, val); err != nil {
			return err
		}
	}
	return nil
}

// Garbage reports the fraction of scanned appends that are superseded
// (compaction candidates): 0 when every append is live.
func (s *Store) Garbage() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.appends == 0 {
		return 0
	}
	return float64(s.appends-len(s.index)) / float64(s.appends)
}

// Recovery returns what open found (see Recovery).
func (s *Store) Recovery() Recovery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Compact rewrites the log with only live records: write-new + fsync +
// atomic rename + directory fsync. A crash at any point leaves either the
// complete old log or the complete new one; a failed compaction leaves the
// old log serving and removes its temporary.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Flush the old log first so the records being carried over are the
	// durable truth (and a crash mid-compaction loses nothing).
	if err := s.syncLocked(); err != nil {
		return err
	}
	dir := filepath.Dir(s.path)
	tmp, tmpName, err := s.fs.CreateTemp(dir, filepath.Base(s.path)+".compact-*")
	if err != nil {
		return storeErr("compact: create temp", err)
	}
	abort := func(stage string, err error) error {
		tmp.Close()
		s.fs.Remove(tmpName)
		return storeErr("compact: "+stage, err)
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := tmp.WriteAt([]byte(magic), 0); err != nil {
		return abort("write header", err)
	}
	off := int64(len(magic))
	newIndex := make(map[string]recLoc, len(keys))
	for _, k := range keys {
		val, err := s.readValueLocked(k, s.index[k])
		if err != nil {
			return abort("carry "+k, err)
		}
		rec := encodeRecord(k, val)
		if _, err := tmp.WriteAt(rec, off); err != nil {
			return abort("write "+k, err)
		}
		newIndex[k] = recLoc{off: off + 8, plen: len(rec) - 8, keyLen: len(k)}
		off += int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		return abort("sync", err)
	}
	if err := tmp.Close(); err != nil {
		return abort("close", err)
	}
	if err := s.fs.Rename(tmpName, s.path); err != nil {
		s.fs.Remove(tmpName)
		return storeErr("compact: rename", err)
	}
	if err := s.fs.SyncDir(dir); err != nil {
		// The rename happened; only its durability is in question. Keep
		// serving the new log and surface the error.
		s.logf("store: compact: dir sync: %v", err)
	}
	f, err := s.fs.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		// The new log is installed but we lost our handle; the store can
		// no longer append. Surface a hard error.
		return storeErr("compact: reopen", err)
	}
	s.f.Close()
	s.f = f
	s.index = newIndex
	s.size = off
	s.appends = len(newIndex)
	s.pending = 0
	s.logf("store: compacted %s: %d records, %d bytes", s.path, len(newIndex), off)
	return nil
}

// Close syncs pending appends and releases the file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	serr := s.syncLocked()
	cerr := s.f.Close()
	s.closed = true
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return storeErr("close", cerr)
	}
	return nil
}

// Path returns the log file path.
func (s *Store) Path() string { return s.path }
