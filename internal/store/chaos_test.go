// Chaos harness: prove the store's recovery invariants under real process
// death. The parent (TestChaosRecovery) sweeps a crash point across every
// mutating filesystem operation of a fixed workload; for each point it
// re-executes this test binary as a child (TestChaosChild) whose injector
// kills the process mid-operation — torn half-written records, skipped
// fsyncs, renames that never happen, directory syncs that never happen.
//
// The child journals every store mutation to a progress file ("try" before
// the call, "ok" after a nil return). With SyncEvery == 1 an acknowledged
// Put is a synced Put, so the parent can replay the journal and assert the
// three invariants the rest of the system builds on:
//
//  1. reopening after a crash never fails (recovery is total);
//  2. every acknowledged (synced) record survives with its exact value —
//     the only admissible other value is the single in-flight write the
//     crash interrupted;
//  3. the torn tail is discarded and nothing is quarantined (a kill tears
//     only the tail; it never manufactures mid-log corruption).
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"compisa/internal/fault"
)

const (
	chaosChildEnv = "COMPISA_STORE_CHAOS_CHILD"
	chaosCrashEnv = "COMPISA_STORE_CHAOS_CRASH_AT"
	chaosDirEnv   = "COMPISA_STORE_CHAOS_DIR"
	// chaosPoints is the number of seeded crash points the parent sweeps.
	// The workload performs ~100 mutating ops, so every point below that
	// kills the child somewhere real: header write, record appends, group
	// commits, compaction writes, the compaction rename, the directory
	// sync, and the post-compaction appends.
	chaosPoints = 64
)

// TestChaosChild is the subprocess body; it skips unless the parent set
// the environment. It never returns on a crash point — the injector calls
// os.Exit(fault.StoreCrashExitCode) mid-operation.
func TestChaosChild(t *testing.T) {
	if os.Getenv(chaosChildEnv) == "" {
		t.Skip("chaos child: spawned by TestChaosRecovery")
	}
	crashAt, err := strconv.ParseInt(os.Getenv(chaosCrashEnv), 10, 64)
	if err != nil {
		t.Fatalf("bad %s: %v", chaosCrashEnv, err)
	}
	if err := runChaosChild(os.Getenv(chaosDirEnv), crashAt); err != nil {
		t.Fatalf("chaos child: %v", err)
	}
}

// runChaosChild executes the deterministic workload with a crash planted
// at the crashAt-th mutating store operation.
func runChaosChild(dir string, crashAt int64) error {
	progress, err := os.OpenFile(filepath.Join(dir, "progress.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer progress.Close()
	journal := func(phase, key, val string) {
		fmt.Fprintf(progress, "%s %s %s\n", phase, key, val)
	}

	inj, err := fault.NewStoreInjector(fault.StoreConfig{CrashAt: crashAt})
	if err != nil {
		return err
	}
	s, err := Open(filepath.Join(dir, "points.log"), Options{
		FS:        NewFaultFS(nil, inj),
		SyncEvery: 1, // every acked Put is a synced Put
	})
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	put := func(key, val string) error {
		journal("try", key, val)
		if err := s.Put(key, []byte(val)); err != nil {
			return err
		}
		journal("ok", key, val)
		return nil
	}
	// Phase 1: fill the log.
	for i := 0; i < 12; i++ {
		if err := put(fmt.Sprintf("key-%02d", i), fmt.Sprintf("v1-%02d", i)); err != nil {
			return err
		}
	}
	// Phase 2: overwrite a prefix (creates compaction garbage and tests
	// last-write-wins across a crash).
	for i := 0; i < 4; i++ {
		if err := put(fmt.Sprintf("key-%02d", i), fmt.Sprintf("v2-%02d", i)); err != nil {
			return err
		}
	}
	// Phase 3: compact (write-new + fsync + rename + dir fsync — four
	// distinct crash phases).
	journal("try", "compact", "-")
	if err := s.Compact(); err != nil {
		return err
	}
	journal("ok", "compact", "-")
	// Phase 4: keep appending on the compacted log.
	for i := 12; i < 16; i++ {
		if err := put(fmt.Sprintf("key-%02d", i), fmt.Sprintf("v1-%02d", i)); err != nil {
			return err
		}
	}
	return s.Close()
}

// chaosOutcome is one crash point's verdict, serialized into the recovery
// report artifact.
type chaosOutcome struct {
	CrashAt     int    `json:"crash_at"`
	Crashed     bool   `json:"crashed"`
	Records     int    `json:"records"`
	Appends     int    `json:"appends"`
	TornBytes   int64  `json:"torn_bytes"`
	Quarantined int    `json:"quarantined"`
	AckedPuts   int    `json:"acked_puts"`
	Failure     string `json:"failure,omitempty"`
}

func TestChaosRecovery(t *testing.T) {
	if os.Getenv(chaosChildEnv) != "" {
		t.Skip("chaos parent must not recurse")
	}
	if testing.Short() {
		t.Skip("chaos sweep spawns subprocesses; skipped in -short")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]chaosOutcome, 0, chaosPoints+1)
	crashed := 0
	// Point 0 runs the workload crash-free to validate the harness itself;
	// points 1..chaosPoints each kill the child at a distinct operation.
	for point := 0; point <= chaosPoints; point++ {
		dir := t.TempDir()
		cmd := exec.Command(bin, "-test.run", "^TestChaosChild$")
		cmd.Env = append(os.Environ(),
			chaosChildEnv+"=1",
			chaosCrashEnv+"="+strconv.Itoa(point),
			chaosDirEnv+"="+dir,
		)
		out, runErr := cmd.CombinedOutput()
		o := chaosOutcome{CrashAt: point}
		switch code := cmd.ProcessState.ExitCode(); {
		case runErr == nil:
			// Child completed the whole workload without hitting the
			// crash point.
		case code == fault.StoreCrashExitCode:
			o.Crashed = true
			crashed++
		default:
			t.Fatalf("crash point %d: child failed organically (exit %d):\n%s", point, code, out)
		}
		verifyChaosRecovery(t, dir, &o)
		outcomes = append(outcomes, o)
	}
	// The sweep must actually have exercised crashes — if the workload
	// shrank below the sweep range, the suite would silently weaken.
	if crashed < 50 {
		t.Errorf("only %d of %d points crashed the child; the chaos suite needs >= 50 real crash points (grow the workload)", crashed, chaosPoints)
	}
	writeChaosReport(t, outcomes)
}

// verifyChaosRecovery reopens the store a crashed (or completed) child
// left behind and checks the recovery invariants against its journal.
func verifyChaosRecovery(t *testing.T, dir string, o *chaosOutcome) {
	t.Helper()
	acked, inflight := replayJournal(t, filepath.Join(dir, "progress.log"))
	o.AckedPuts = len(acked)

	s, err := Open(filepath.Join(dir, "points.log"), Options{})
	if err != nil {
		t.Errorf("crash point %d: reopen failed: %v (invariant: recovery is total)", o.CrashAt, err)
		o.Failure = fmt.Sprintf("reopen: %v", err)
		return
	}
	defer s.Close()
	rec := s.Recovery()
	o.Records, o.Appends = rec.Records, rec.Appends
	o.TornBytes, o.Quarantined = rec.TruncatedBytes, rec.Quarantined
	if rec.Quarantined != 0 {
		t.Errorf("crash point %d: %d records quarantined; a kill must only tear the tail", o.CrashAt, rec.Quarantined)
		o.Failure = "quarantined records after kill"
	}
	for key, want := range acked {
		got, err := s.Get(key)
		if err != nil {
			t.Errorf("crash point %d: synced record %s lost: %v", o.CrashAt, key, err)
			o.Failure = "synced record lost"
			continue
		}
		if string(got) == want {
			continue
		}
		// The only admissible deviation: the crash interrupted a later
		// overwrite of this key whose bytes happened to land completely.
		if try, ok := inflight[key]; ok && string(got) == try {
			continue
		}
		t.Errorf("crash point %d: %s = %q, want %q (or in-flight %q)", o.CrashAt, key, got, want, inflight[key])
		o.Failure = "wrong value after recovery"
	}
}

// replayJournal parses the child's progress file: the last acknowledged
// value per key, plus the (single) in-flight try the crash interrupted.
func replayJournal(t *testing.T, path string) (acked, inflight map[string]string) {
	t.Helper()
	acked, inflight = map[string]string{}, map[string]string{}
	f, err := os.Open(path)
	if err != nil {
		// Crash before the first journal line (e.g. during the header
		// write): nothing was acknowledged, nothing to check.
		return acked, inflight
	}
	defer f.Close()
	tries := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), " ", 3)
		if len(parts) != 3 || parts[1] == "compact" {
			continue
		}
		phase, key, val := parts[0], parts[1], parts[2]
		switch phase {
		case "try":
			tries[key] = val
		case "ok":
			acked[key] = val
			delete(tries, key)
		}
	}
	for key, val := range tries {
		inflight[key] = val
	}
	return acked, inflight
}

// writeChaosReport persists the sweep's outcomes when CHAOS_REPORT names a
// file (the CI job uploads it as an artifact on failure).
func writeChaosReport(t *testing.T, outcomes []chaosOutcome) {
	t.Helper()
	path := os.Getenv("CHAOS_REPORT")
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(outcomes, "", "  ")
	if err != nil {
		t.Fatalf("chaos report: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Errorf("chaos report: %v", err)
	}
	t.Logf("chaos report: %d outcomes written to %s", len(outcomes), path)
}
