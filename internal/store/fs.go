package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the seam between the store and the filesystem: every byte the
// store persists flows through it, so a fault-injecting implementation
// (FaultFS) can tear writes, fail fsyncs, and crash the process at any
// mutating operation while the store's own logic stays untouched.
type FS interface {
	// OpenFile opens (creating if needed) the named file for read/write.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a uniquely named temporary file in dir (compaction
	// targets; renamed into place once complete and synced).
	CreateTemp(dir, pattern string) (File, string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (stale compaction temporaries).
	Remove(name string) error
	// SyncDir fsyncs a directory, making a completed rename durable.
	SyncDir(dir string) error
}

// File is the slice of *os.File the store uses. Appends go through WriteAt
// at the tracked end offset (never O_APPEND), so a fault wrapper sees the
// exact bytes and offset of every write.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// OSFS is the production FS backed by package os.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OSFS) CreateTemp(dir, pattern string) (File, string, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, "", err
	}
	return f, f.Name(), nil
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	// Directory fsync is advisory on some filesystems; a sync error still
	// matters (the rename may not be durable) and is reported as such.
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
