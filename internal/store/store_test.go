package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"compisa/internal/fault"
)

func testPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "points.log")
}

func mustOpen(t *testing.T, path string, opts Options) *Store {
	t.Helper()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, key, val string) {
	t.Helper()
	if err := s.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func wantGet(t *testing.T, s *Store, key, val string) {
	t.Helper()
	got, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	if string(got) != val {
		t.Fatalf("Get(%s) = %q, want %q", key, got, val)
	}
}

func TestRoundtripAndReopen(t *testing.T) {
	path := testPath(t)
	s := mustOpen(t, path, Options{})
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("key-%02d", i), fmt.Sprintf("value-%02d", i))
	}
	mustPut(t, s, "key-05", "overwritten") // last write wins
	wantGet(t, s, "key-05", "overwritten")
	if s.Len() != 20 {
		t.Fatalf("Len = %d, want 20", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, path, Options{})
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("reopened Len = %d, want 20", s2.Len())
	}
	wantGet(t, s2, "key-05", "overwritten")
	wantGet(t, s2, "key-19", "value-19")
	rec := s2.Recovery()
	if rec.Appends != 21 || rec.Quarantined != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v, want 21 appends and nothing repaired", rec)
	}
	if g := s2.Garbage(); g <= 0 {
		t.Fatalf("Garbage = %g, want > 0 (one superseded record)", g)
	}
}

func TestGetMissingAndClosed(t *testing.T) {
	s := mustOpen(t, testPath(t), Options{})
	if _, err := s.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close = %v, want nil", err)
	}
}

// TestTornTailTruncated proves open discards garbage after the last valid
// record instead of failing.
func TestTornTailTruncated(t *testing.T) {
	path := testPath(t)
	s := mustOpen(t, path, Options{})
	mustPut(t, s, "a", "alpha")
	mustPut(t, s, "b", "beta")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crashed append leaves a torn record: a plausible header with a cut
	// payload. Simulate with raw garbage of varying shapes.
	for _, tail := range [][]byte{
		{0x07},                         // one stray byte
		{0x20, 0x00, 0x00, 0x00},       // half a header
		append(binary.LittleEndian.AppendUint32(nil, 40), 1, 2, 3, 4, 5, 6), // header claiming 40 bytes, 2 present
	} {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		before, _ := os.Stat(path)
		if _, err := f.Write(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		s2 := mustOpen(t, path, Options{})
		rec := s2.Recovery()
		if rec.TruncatedBytes != int64(len(tail)) {
			t.Fatalf("tail %v: TruncatedBytes = %d, want %d", tail, rec.TruncatedBytes, len(tail))
		}
		wantGet(t, s2, "a", "alpha")
		wantGet(t, s2, "b", "beta")
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		after, _ := os.Stat(path)
		if after.Size() != before.Size() {
			t.Fatalf("tail %v: size %d after reopen, want %d (tail removed)", tail, after.Size(), before.Size())
		}
	}
}

// TestMidLogCorruptionQuarantined proves a corrupt record with a valid
// successor is skipped and counted, never fatal, and never truncates the
// records after it.
func TestMidLogCorruptionQuarantined(t *testing.T) {
	path := testPath(t)
	s := mustOpen(t, path, Options{})
	mustPut(t, s, "a", "alpha")
	mustPut(t, s, "b", "beta")
	mustPut(t, s, "c", "gamma")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the middle record ("b"): its CRC fails but
	// "c" still parses, so recovery must skip, not truncate.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte("beta"))
	if i < 0 {
		t.Fatal("test setup: value not found in log")
	}
	data[i] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, path, Options{})
	defer s2.Close()
	rec := s2.Recovery()
	if rec.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", rec.Quarantined)
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("TruncatedBytes = %d, want 0 (mid-log corruption must not truncate)", rec.TruncatedBytes)
	}
	wantGet(t, s2, "a", "alpha")
	wantGet(t, s2, "c", "gamma")
	if _, err := s2.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(b) = %v, want ErrNotFound (record quarantined)", err)
	}
	// The store stays appendable after quarantine; the new record heals b.
	mustPut(t, s2, "b", "beta2")
	wantGet(t, s2, "b", "beta2")
}

// TestFutureRecordVersionSkipped proves forward compatibility: an intact
// record with an unknown version byte is skipped with a count.
func TestFutureRecordVersionSkipped(t *testing.T) {
	path := testPath(t)
	s := mustOpen(t, path, Options{})
	mustPut(t, s, "a", "alpha")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Craft a version-99 record with a correct checksum and append it.
	payload := append([]byte{99}, binary.LittleEndian.AppendUint32(nil, 1)...)
	payload = append(payload, 'z', 'f', 'u', 't', 'u', 'r', 'e')
	rec := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	rec = append(rec, payload...)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := mustOpen(t, path, Options{})
	defer s2.Close()
	if q := s2.Recovery().Quarantined; q != 1 {
		t.Fatalf("Quarantined = %d, want 1 (future-version record)", q)
	}
	wantGet(t, s2, "a", "alpha")
}

// TestTornHeader proves a file cut inside the 8-byte magic is reset, and a
// foreign file is refused rather than clobbered.
func TestTornHeader(t *testing.T) {
	path := testPath(t)
	if err := os.WriteFile(path, []byte(magic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, path, Options{})
	if rec := s.Recovery(); rec.TruncatedBytes != 3 {
		t.Fatalf("TruncatedBytes = %d, want 3", rec.TruncatedBytes)
	}
	mustPut(t, s, "a", "alpha")
	s.Close()

	foreign := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(foreign, []byte("not a store file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(foreign, Options{}); err == nil {
		t.Fatal("Open(foreign file) succeeded, want bad-magic error")
	}
	got, err := os.ReadFile(foreign)
	if err != nil || string(got) != "not a store file" {
		t.Fatalf("foreign file altered: %q, %v", got, err)
	}
}

func TestCompact(t *testing.T) {
	path := testPath(t)
	s := mustOpen(t, path, Options{})
	for i := 0; i < 10; i++ {
		mustPut(t, s, "key", fmt.Sprintf("v%d", i)) // 9 superseded appends
		mustPut(t, s, fmt.Sprintf("live-%d", i), "x")
	}
	if g := s.Garbage(); g <= 0.3 {
		t.Fatalf("Garbage = %g, want > 0.3 before compaction", g)
	}
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("size %d after compaction, want < %d", after.Size(), before.Size())
	}
	if g := s.Garbage(); g != 0 {
		t.Fatalf("Garbage = %g after compaction, want 0", g)
	}
	wantGet(t, s, "key", "v9")
	// The compacted store keeps serving appends on the new handle.
	mustPut(t, s, "post", "compact")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, path, Options{})
	defer s2.Close()
	if s2.Len() != 12 {
		t.Fatalf("Len = %d after reopen, want 12", s2.Len())
	}
	wantGet(t, s2, "key", "v9")
	wantGet(t, s2, "post", "compact")
	// No temporaries left behind.
	stale, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.compact-*"))
	if len(stale) != 0 {
		t.Fatalf("stale compaction temps left: %v", stale)
	}
}

// TestGroupCommit proves SyncEvery batches fsyncs: with a boundary of 4,
// only every fourth Put pays a sync.
func TestGroupCommit(t *testing.T) {
	inj, err := fault.NewStoreInjector(fault.StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultFS(nil, inj)
	s := mustOpen(t, testPath(t), Options{FS: fs, SyncEvery: 4})
	base := inj.Ops() // open wrote+synced the header
	for i := 0; i < 8; i++ {
		mustPut(t, s, fmt.Sprintf("k%d", i), "v")
	}
	// 8 writes + 2 group-commit syncs.
	if got := inj.Ops() - base; got != 10 {
		t.Fatalf("ops = %d, want 10 (8 writes + 2 syncs)", got)
	}
	mustPut(t, s, "k8", "v")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil { // nothing pending: no fsync issued
		t.Fatal(err)
	}
	if got := inj.Ops() - base; got != 12 {
		t.Fatalf("ops = %d, want 12 (9 writes + 3 syncs, idle Sync free)", got)
	}
	s.Close()
}

// TestInjectedFaults drives the store through rate-injected short writes,
// write errors, and fsync errors: every failure surfaces as a classified
// StageStore fault, the store keeps serving, and a clean reopen sees every
// acknowledged record.
func TestInjectedFaults(t *testing.T) {
	path := testPath(t)
	// Boot cleanly first (the header write is part of open); chaos starts
	// once the store is serving, like a disk going bad under load.
	mustOpen(t, path, Options{}).Close()
	inj, err := fault.NewStoreInjector(fault.StoreConfig{Seed: 42, Rate: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, path, Options{FS: NewFaultFS(nil, inj)})
	acked := map[string]string{}
	var failures int
	for i := 0; i < 200; i++ {
		key, val := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i)
		err := s.Put(key, []byte(val))
		if err == nil {
			acked[key] = val
			continue
		}
		failures++
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("Put(%s): organic error %v under injection", key, err)
		}
		var fe *fault.Error
		if !errors.As(err, &fe) || fe.Stage != fault.StageStore {
			t.Fatalf("Put(%s): error %v not classified as StageStore", key, err)
		}
	}
	if failures == 0 {
		t.Fatal("no faults injected at rate 0.3 over 200 puts")
	}
	s.Close()

	// Reopen without injection: recovery is clean and every acked record
	// survives. (Sync-failed records may survive too — the invariant is
	// one-directional.)
	s2 := mustOpen(t, path, Options{})
	defer s2.Close()
	for key, val := range acked {
		got, err := s2.Get(key)
		if err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%s): %v", key, err)
		}
		// A Put whose own append succeeded but whose group-commit fsync
		// failed was still acked=false above, so everything in acked had
		// err == nil and must be present.
		if err != nil {
			t.Fatalf("acked record %s lost after reopen", key)
		}
		if string(got) != val {
			t.Fatalf("Get(%s) = %q, want %q", key, got, val)
		}
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := mustOpen(t, testPath(t), Options{SyncEvery: 8})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-%03d", w, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Errorf("Put(%s): %v", key, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
	var n int
	if err := s.Range(func(key string, val []byte) error {
		if key != string(val) {
			t.Fatalf("Range: %q -> %q", key, val)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("Range visited %d, want 200", n)
	}
	s.Close()
}
