package store

import (
	"fmt"

	"compisa/internal/fault"
	"os"
)

// FaultFS wraps an FS and consults a fault.StoreInjector on every mutating
// operation: writes, fsyncs, renames, and directory fsyncs. It simulates
//
//   - short writes: only a prefix of the buffer reaches the file, and the
//     operation reports an error (what a crashed write leaves behind);
//   - write errors: nothing reaches the file;
//   - fsync errors: the sync reports failure (bytes may or may not be
//     durable — the store must treat them as not);
//   - crashes: the process exits mid-operation, after persisting a torn
//     prefix for writes, driving the subprocess chaos harness.
//
// Reads and truncates pass through untouched: recovery must always be able
// to run.
type FaultFS struct {
	FS
	Inject *fault.StoreInjector
}

// NewFaultFS wraps fs (nil = OSFS{}) with injection.
func NewFaultFS(fs FS, inj *fault.StoreInjector) *FaultFS {
	if fs == nil {
		fs = OSFS{}
	}
	return &FaultFS{FS: fs, Inject: inj}
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, inj: f.Inject}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, string, error) {
	file, name, err := f.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, "", err
	}
	return &faultFile{File: file, inj: f.Inject}, name, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	switch d := f.Inject.Decide(fault.OpRename); d.Kind {
	case fault.KindCrash:
		// Killed before the swap: the old file must still be complete.
		f.Inject.Crash()
	}
	return f.FS.Rename(oldpath, newpath)
}

func (f *FaultFS) SyncDir(dir string) error {
	switch d := f.Inject.Decide(fault.OpSyncDir); d.Kind {
	case fault.KindCrash:
		// Killed after the rename but before the directory fsync.
		f.Inject.Crash()
	case fault.KindSyncErr:
		return fmt.Errorf("%w: %s dir sync", fault.ErrInjected, d.Kind)
	}
	return f.FS.SyncDir(dir)
}

// faultFile intercepts the mutating File operations.
type faultFile struct {
	File
	inj *fault.StoreInjector
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	switch d := f.inj.Decide(fault.OpWrite); d.Kind {
	case fault.KindCrash:
		// Persist a torn prefix, then die: the on-disk image matches a
		// kill mid-write.
		f.File.WriteAt(p[:len(p)/2], off)
		f.inj.Crash()
	case fault.KindShortWrite:
		n, _ := f.File.WriteAt(p[:len(p)/2], off)
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", fault.ErrInjected, n, len(p))
	case fault.KindWriteErr:
		return 0, fmt.Errorf("%w: write error", fault.ErrInjected)
	}
	return f.File.WriteAt(p, off)
}

func (f *faultFile) Sync() error {
	switch d := f.inj.Decide(fault.OpSync); d.Kind {
	case fault.KindCrash:
		// Killed instead of syncing: anything since the last good sync
		// may or may not survive — the invariant only covers acked syncs.
		f.inj.Crash()
	case fault.KindSyncErr:
		return fmt.Errorf("%w: fsync error", fault.ErrInjected)
	}
	return f.File.Sync()
}
