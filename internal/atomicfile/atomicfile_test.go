package atomicfile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func TestWriteAndReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if runtime.GOOS != "windows" {
		fi, _ := os.Stat(path)
		if fi.Mode().Perm() != 0o644 {
			t.Fatalf("mode = %v, want 0644", fi.Mode().Perm())
		}
	}
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2" {
		t.Fatalf("after replace: %q", got)
	}
}

// TestNoTempDebris: success and failure alike leave no temp files next to
// the target.
func TestNoTempDebris(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	if err := WriteFile(path, []byte("ok"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A write into a missing directory fails before any temp is created
	// elsewhere.
	if err := WriteFile(filepath.Join(dir, "missing", "out"), []byte("x"), 0o644); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "out" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory contains %v, want only [out]", names)
	}
}

// TestConcurrentWriters: racing writers never produce a torn file — every
// observable state is one writer's complete payload.
func TestConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "contended")
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 4096)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := WriteFile(path, payload(i), 0o644); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4096 {
		t.Fatalf("torn file: %d bytes", len(got))
	}
	for _, b := range got {
		if b != got[0] {
			t.Fatal("torn file: mixed payloads")
		}
	}
}

func TestLargePayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big")
	data := make([]byte, 8<<20)
	for i := range data {
		data[i] = byte(i)
	}
	if err := WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}
}

func ExampleWriteFile() {
	dir, _ := os.MkdirTemp("", "atomicfile")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "report.txt")
	_ = WriteFile(path, []byte("done\n"), 0o644)
	data, _ := os.ReadFile(path)
	fmt.Print(string(data))
	// Output: done
}
