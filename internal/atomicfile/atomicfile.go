// Package atomicfile writes files atomically and durably: readers observe
// either the previous contents or the new contents, never a torn mix, and
// once WriteFile returns the new contents survive power loss.
//
// The sequence is the standard crash-safe construction:
//
//  1. create a uniquely named temp file in the target's directory (same
//     filesystem, so the rename is atomic; unique name, so concurrent
//     writers never clobber each other's temp),
//  2. write the payload and fsync the temp (contents durable under the
//     temp name before the swap),
//  3. rename over the target (atomic on POSIX),
//  4. fsync the parent directory (the rename itself durable).
//
// Skipping step 2 is the classic bug: rename-without-fsync can commit the
// name before the data, leaving a zero-length or partial target after a
// crash. Skipping step 4 can lose the rename itself, resurrecting the old
// file — acceptable for caches, surprising for checkpoints.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically and durably replaces path with data. The temp file
// is created via os.CreateTemp in path's directory and removed on any
// failure, so aborted writes leave no debris behind the target name.
func WriteFile(path string, data []byte, perm os.FileMode) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("atomicfile: write %s: %w", tmp, err)
	}
	// CreateTemp uses 0600; widen to the caller's mode before publishing.
	if err = f.Chmod(perm); err != nil {
		return fmt.Errorf("atomicfile: chmod %s: %w", tmp, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicfile: fsync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicfile: rename %s: %w", tmp, err)
	}
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("atomicfile: sync dir %s: %w", dir, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-committed rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
