package perfmodel_test

import (
	"testing"

	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/explore"
	"compisa/internal/isa"
	"compisa/internal/perfmodel"
	"compisa/internal/workload"
)

// batchProfile compiles and profiles one region under one feature set, with
// a truncated budget to keep the full-config-sweep comparison fast.
func batchProfile(t *testing.T, name string, fs isa.FeatureSet) *cpu.Profile {
	t.Helper()
	var reg workload.Region
	for _, r := range workload.Regions() {
		if r.Name == name {
			reg = r
		}
	}
	if reg.Build == nil {
		t.Fatalf("unknown region %s", name)
	}
	f, m, err := reg.Build(fs.Width)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, fs, compiler.Options{Verify: compiler.VerifyOff})
	if err != nil {
		t.Fatal(err)
	}
	prog.Name = reg.Name
	prof, _, err := cpu.CollectProfile(prog, m, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

// TestScorerMatchesCycles: for real profiles across both complexity modes,
// Scorer.Cycles and CyclesBatch must return bit-identical Results to the
// per-call Cycles path over the entire exploration configuration grid.
func TestScorerMatchesCycles(t *testing.T) {
	cfgs := explore.Configs()
	if len(cfgs) < 100 {
		t.Fatalf("configuration grid unexpectedly small: %d", len(cfgs))
	}
	for _, tc := range []struct {
		region string
		fs     isa.FeatureSet
	}{
		{"gobmk.0", isa.X8664},
		{"milc.0", isa.X8664},
		{"mcf.0", isa.MicroX86Min},
	} {
		prof := batchProfile(t, tc.region, tc.fs)
		s, err := perfmodel.NewScorer(prof)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := perfmodel.CyclesBatch(prof, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range cfgs {
			want, werr := perfmodel.Cycles(prof, cfg)
			got, gerr := s.Cycles(cfg)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s cfg %d: error mismatch: %v vs %v", tc.region, i, werr, gerr)
			}
			if werr != nil {
				if werr.Error() != gerr.Error() {
					t.Fatalf("%s cfg %d: error text mismatch: %v vs %v", tc.region, i, werr, gerr)
				}
				continue
			}
			if got != want {
				t.Fatalf("%s cfg %d: Scorer.Cycles diverges:\nscorer %+v\ncycles %+v", tc.region, i, got, want)
			}
			if rs[i] != want {
				t.Fatalf("%s cfg %d: CyclesBatch diverges:\nbatch  %+v\ncycles %+v", tc.region, i, rs[i], want)
			}
		}
	}
}

// TestScorerEmptyProfile: Scorer construction rejects an empty profile with
// the same error the per-call path reports.
func TestScorerEmptyProfile(t *testing.T) {
	empty := &cpu.Profile{}
	_, serr := perfmodel.NewScorer(empty)
	_, cerr := perfmodel.Cycles(empty, explore.Configs()[0])
	if serr == nil || cerr == nil {
		t.Fatalf("empty profile accepted: scorer err %v, cycles err %v", serr, cerr)
	}
	if serr.Error() != cerr.Error() {
		t.Fatalf("error text mismatch: %q vs %q", serr, cerr)
	}
	if _, err := perfmodel.CyclesBatch(empty, explore.Configs()[:3]); err == nil ||
		err.Error() != cerr.Error() {
		t.Fatalf("CyclesBatch error %v, want %v", err, cerr)
	}
}
