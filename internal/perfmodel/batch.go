package perfmodel

import (
	"fmt"
	"math"

	"compisa/internal/cpu"
)

// Scorer precomputes every configuration-independent term of the interval
// model for one profile, so scoring all ~180 microarch configurations of
// the exploration space walks the profile's struct-of-arrays once instead
// of recomputing fractions, rates, and naive stall sums per configuration.
//
// Scorer.Cycles is bit-identical to Cycles: every floating-point expression
// is either hoisted verbatim (so the operation order, and therefore the
// rounding, is unchanged) or still evaluated per configuration. The
// per-config path in perfmodel.go remains the differential oracle.
type Scorer struct {
	p *cpu.Profile

	n        float64
	fracInt  float64
	fracMul  float64
	fracFP   float64 // UcFP + UcFDiv combined (divides share FP units)
	loadB    float64 // precomputed bounds for the fixed-unit classes
	storeB   float64
	branchB  float64
	legacyUR float64 // legacy decode uop rate
	dispFuse float64 // dispatch slots saved by fusion

	mispredicts [cpu.NumPredictors]float64

	// Per cache combination [l1i][l1d][l2].
	naive     [2][2][2]float64
	l1dMisses [2][2][2]float64
	l2Misses  [2][2][2]float64
	l1iMisses [2][2][2]float64

	exposure float64 // clamped dependence-aware exposure ratio
}

// NewScorer builds a batch scorer over one profile.
func NewScorer(p *cpu.Profile) (*Scorer, error) {
	n := float64(p.Uops)
	if n == 0 {
		return nil, fmt.Errorf("perfmodel: empty profile")
	}
	s := &Scorer{p: p, n: n}
	s.fracInt = float64(p.UopsByClass[cpu.UcInt]) / n
	s.fracMul = float64(p.UopsByClass[cpu.UcMul]) / n
	s.fracFP = float64(p.UopsByClass[cpu.UcFP]+p.UopsByClass[cpu.UcFDiv]) / n
	s.loadB, s.storeB, s.branchB = math.Inf(1), math.Inf(1), math.Inf(1)
	if frac := float64(p.UopsByClass[cpu.UcLoad]) / n; frac > 0 {
		s.loadB = 2 / frac
	}
	if frac := float64(p.UopsByClass[cpu.UcStore]) / n; frac > 0 {
		s.storeB = 1 / frac
	}
	if frac := float64(p.UopsByClass[cpu.UcBranch]) / n; frac > 0 {
		s.branchB = 1 / frac
	}

	uopsPerInstr := n / float64(p.Instrs)
	legacyInstrRate := math.Min(3, 16.0/math.Max(1, p.AvgInstrLen))
	s.legacyUR = legacyInstrRate * uopsPerInstr
	s.dispFuse = float64(p.MemALUOps + p.FusedBranches)

	for k := 0; k < cpu.NumPredictors; k++ {
		s.mispredicts[k] = p.MispredictRate[k] * float64(p.Branches)
	}

	l2Extra := float64(cpu.LatL2 - cpu.LatL1)
	memExtra := float64(cpu.LatMem - cpu.LatL1)
	for i := 0; i < 2; i++ {
		for d := 0; d < 2; d++ {
			for l := 0; l < 2; l++ {
				mp := p.Mem[i][d][l]
				l2Hits := float64(mp.L1DMisses - mp.L2Misses)
				s.naive[i][d][l] = l2Hits*l2Extra + float64(mp.L2Misses)*memExtra
				s.l1dMisses[i][d][l] = float64(mp.L1DMisses)
				s.l2Misses[i][d][l] = float64(mp.L2Misses)
				s.l1iMisses[i][d][l] = float64(mp.L1IMisses)
			}
		}
	}

	s.exposure = 1.0
	if p.NaiveStallRef > 0 {
		s.exposure = p.MemExposedCycles / p.NaiveStallRef
		if s.exposure > 1 {
			s.exposure = 1
		}
	}
	return s, nil
}

// Cycles predicts the cycle count for one configuration using the
// precomputed terms; identical to the package-level Cycles bit for bit.
func (s *Scorer) Cycles(cfg cpu.CoreConfig) (Result, error) {
	var r Result
	p := s.p
	n := s.n
	i1, err := cacheOptIdx(cfg.L1I, cpu.L1IOptions)
	if err != nil {
		return r, err
	}
	d1, err := cacheOptIdx(cfg.L1D, cpu.L1DOptions)
	if err != nil {
		return r, err
	}
	l2, err := cacheOptIdx(cfg.L2, cpu.L2Options)
	if err != nil {
		return r, err
	}

	// ---- Effective dispatch rate. ----
	width := float64(cfg.Width)
	var ilp float64
	if cfg.OoO {
		window := cfg.ROB
		if q := cfg.IQ * 3; q < window {
			window = q
		}
		ilp = ilpAt(p, window)
	} else {
		ilp = p.IPCInOrder
	}

	fuBound := math.Inf(1)
	if s.fracInt > 0 {
		if b := float64(cfg.IntALU) / s.fracInt; b < fuBound {
			fuBound = b
		}
	}
	if s.fracMul > 0 {
		if b := float64(cfg.IntMul) / s.fracMul; b < fuBound {
			fuBound = b
		}
	}
	if s.fracFP > 0 {
		if b := float64(cfg.FPALU) / s.fracFP; b < fuBound {
			fuBound = b
		}
	}
	if s.loadB < fuBound {
		fuBound = s.loadB
	}
	if s.storeB < fuBound {
		fuBound = s.storeB
	}
	if s.branchB < fuBound {
		fuBound = s.branchB
	}

	h := 0.0
	if cfg.UopCache {
		h = p.UopCacheHitRate
	}
	frontend := h*width + (1-h)*math.Min(width, s.legacyUR)

	dispatchN := n
	if cfg.Fusion && p.X86Complexity {
		dispatchN -= s.dispFuse
	}
	base := dispatchN / width
	for _, b := range []float64{n / ilp, n / fuBound, n / frontend} {
		if b > base {
			base = b
		}
	}
	r.Base = base

	// ---- Branch misprediction stalls. ----
	r.Mispredicts = s.mispredicts[cfg.Predictor]
	penalty := float64(cpu.FrontendDepth) + 3 // refill + resolve
	if !cfg.OoO {
		penalty = float64(cpu.FrontendDepth)/2 + 2
	}
	r.BranchStall = r.Mispredicts * penalty

	// ---- Exposed memory stalls. ----
	naive := s.naive[i1][d1][l2]
	if cfg.OoO {
		exposure := s.exposure
		windowScale := 1.0
		if cfg.ROB < 128 {
			windowScale = 1 + (1-exposure)*(128-float64(cfg.ROB))/128*0.5
		}
		e := exposure * windowScale
		if e > 1 {
			e = 1
		}
		r.MemStall = naive * e
	} else {
		r.MemStall = naive * 0.95
	}
	r.L1DMisses = s.l1dMisses[i1][d1][l2]
	r.L2Misses = s.l2Misses[i1][d1][l2]

	// ---- Instruction fetch stalls. ----
	r.L1IMisses = s.l1iMisses[i1][d1][l2]
	r.FetchStall = r.L1IMisses * float64(cpu.LatL2) * 0.8

	r.Cycles = r.Base + r.BranchStall + r.MemStall + r.FetchStall
	return r, nil
}

// CyclesBatch scores every configuration against one profile in a single
// pass, failing on the first configuration error.
func CyclesBatch(p *cpu.Profile, cfgs []cpu.CoreConfig) ([]Result, error) {
	s, err := NewScorer(p)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(cfgs))
	for i := range cfgs {
		out[i], err = s.Cycles(cfgs[i])
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
