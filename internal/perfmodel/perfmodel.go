// Package perfmodel implements a mechanistic (interval-style) performance
// model: given one profiling pass of a (region, feature set) pair, it
// predicts the cycle count of any microarchitectural configuration from the
// exploration space. This is what makes the paper's 4680-design-point,
// 49-region sweep tractable — the detailed simulator in internal/cpu is used
// to validate the model, not to drive the search.
//
// The model composes the classic interval terms:
//
//	cycles = N/Deff + mispredicts*penalty + exposed memory stalls + fetch stalls
//
// where the effective dispatch rate Deff is bounded by issue width, by the
// dependence-limited ILP curve measured at the configuration's window size,
// by functional-unit throughput for the profiled micro-op mix, and by
// front-end supply (micro-op cache hit rate and ILD/legacy decode bandwidth).
package perfmodel

import (
	"fmt"
	"math"

	"compisa/internal/cpu"
)

// Result reports predicted cycles and their decomposition.
type Result struct {
	Cycles      float64
	Base        float64 // dispatch/dependence-bound portion
	BranchStall float64
	MemStall    float64
	FetchStall  float64
	// Activity passed through for the energy model.
	Mispredicts float64
	L1DMisses   float64
	L2Misses    float64
	L1IMisses   float64
}

// Overlap factors: how much of a miss's latency an out-of-order window
// hides. In-order cores expose nearly everything.
const (
	oooL2Hide  = 0.65
	oooMemHide = 0.30
	ioL2Hide   = 0.05
	ioMemHide  = 0.0
)

// cacheOptIdx maps a cache config onto the profile's option index.
func cacheOptIdx(c cpu.CacheCfg, opts [2]cpu.CacheCfg) (int, error) {
	for i, o := range opts {
		if o.SizeKB == c.SizeKB && o.Assoc == c.Assoc {
			return i, nil
		}
	}
	return 0, fmt.Errorf("perfmodel: cache config %+v not profiled", c)
}

// ilpAt interpolates the dependence-limited IPC curve at a window size.
// The curve is a fixed-size array indexed by cpu.ILPWindows, walked in
// order — no map iteration, so the bracketing points are found
// deterministically.
func ilpAt(p *cpu.Profile, window int) float64 {
	lo, hi := 0, 0
	loV, hiV := 0.0, 0.0
	for i, w := range cpu.ILPWindows {
		v := p.IPCWindow[i]
		if w <= window && w > lo {
			lo, loV = w, v
		}
		if w >= window && (hi == 0 || w < hi) {
			hi, hiV = w, v
		}
	}
	switch {
	case lo == 0:
		return hiV
	case hi == 0:
		return loV
	case lo == hi:
		return loV
	default:
		f := float64(window-lo) / float64(hi-lo)
		return loV + f*(hiV-loV)
	}
}

// Cycles predicts the cycle count of running the profiled region on cfg.
func Cycles(p *cpu.Profile, cfg cpu.CoreConfig) (Result, error) {
	var r Result
	n := float64(p.Uops)
	if n == 0 {
		return r, fmt.Errorf("perfmodel: empty profile")
	}
	i1, err := cacheOptIdx(cfg.L1I, cpu.L1IOptions)
	if err != nil {
		return r, err
	}
	d1, err := cacheOptIdx(cfg.L1D, cpu.L1DOptions)
	if err != nil {
		return r, err
	}
	l2, err := cacheOptIdx(cfg.L2, cpu.L2Options)
	if err != nil {
		return r, err
	}
	mp := p.Mem[i1][d1][l2]

	// ---- Effective dispatch rate. ----
	width := float64(cfg.Width)
	var ilp float64
	if cfg.OoO {
		window := cfg.ROB
		if q := cfg.IQ * 3; q < window {
			window = q
		}
		ilp = ilpAt(p, window)
	} else {
		ilp = p.IPCInOrder
	}

	// Functional-unit throughput bounds: D*frac_c <= units_c.
	fuBound := math.Inf(1)
	bound := func(cls cpu.UopClass, units float64) {
		frac := float64(p.UopsByClass[cls]) / n
		if frac <= 0 {
			return
		}
		if b := units / frac; b < fuBound {
			fuBound = b
		}
	}
	bound(cpu.UcInt, float64(cfg.IntALU))
	bound(cpu.UcMul, float64(cfg.IntMul))
	fpFrac := float64(p.UopsByClass[cpu.UcFP]+p.UopsByClass[cpu.UcFDiv]) / n
	if fpFrac > 0 {
		if b := float64(cfg.FPALU) / fpFrac; b < fuBound {
			fuBound = b
		}
	}
	bound(cpu.UcLoad, 2)
	bound(cpu.UcStore, 1)
	bound(cpu.UcBranch, 1)

	// Front-end supply: micro-op cache hits stream at full width; misses
	// go through the ILD (16 B/cycle) and at most 3 decoders.
	uopsPerInstr := n / float64(p.Instrs)
	legacyInstrRate := math.Min(3, 16.0/math.Max(1, p.AvgInstrLen))
	legacyUopRate := legacyInstrRate * uopsPerInstr
	h := 0.0
	if cfg.UopCache {
		h = p.UopCacheHitRate
	}
	frontend := h*width + (1-h)*math.Min(width, legacyUopRate)

	// Dispatch-slot bound: macro- and micro-op fusion let full-x86 cores
	// dispatch load+op pairs and CMP+JCC pairs in single slots.
	dispatchN := n
	if cfg.Fusion && p.X86Complexity {
		dispatchN -= float64(p.MemALUOps + p.FusedBranches)
	}
	base := dispatchN / width
	for _, b := range []float64{n / ilp, n / fuBound, n / frontend} {
		if b > base {
			base = b
		}
	}
	r.Base = base

	// ---- Branch misprediction stalls. ----
	mr := p.MispredictRate[cfg.Predictor]
	r.Mispredicts = mr * float64(p.Branches)
	penalty := float64(cpu.FrontendDepth) + 3 // refill + resolve
	if !cfg.OoO {
		penalty = float64(cpu.FrontendDepth)/2 + 2
	}
	r.BranchStall = r.Mispredicts * penalty

	// ---- Exposed memory stalls. ----
	// Naive (fully exposed, serial) stall for this cache configuration.
	l2Hits := float64(mp.L1DMisses - mp.L2Misses)
	l2Extra := float64(cpu.LatL2 - cpu.LatL1)
	memExtra := float64(cpu.LatMem - cpu.LatL1)
	naive := l2Hits*l2Extra + float64(mp.L2Misses)*memExtra
	if cfg.OoO {
		// Scale the profiled dependence-aware exposure (measured on the
		// reference hierarchy at a 128-uop window) by this config's naive
		// miss volume: pointer chases expose ~everything, streaming
		// hides ~everything, and smaller windows expose more.
		exposure := 1.0
		if p.NaiveStallRef > 0 {
			exposure = p.MemExposedCycles / p.NaiveStallRef
			if exposure > 1 {
				exposure = 1
			}
		}
		windowScale := 1.0
		if cfg.ROB < 128 {
			// Smaller windows hide less; interpolate toward full
			// exposure as the window shrinks.
			windowScale = 1 + (1-exposure)*(128-float64(cfg.ROB))/128*0.5
		}
		e := exposure * windowScale
		if e > 1 {
			e = 1
		}
		r.MemStall = naive * e
	} else {
		// In-order cores block on every load-use: nearly full exposure.
		r.MemStall = naive * 0.95
	}
	r.L1DMisses = float64(mp.L1DMisses)
	r.L2Misses = float64(mp.L2Misses)

	// ---- Instruction fetch stalls. ----
	r.L1IMisses = float64(mp.L1IMisses)
	r.FetchStall = r.L1IMisses * float64(cpu.LatL2) * 0.8

	r.Cycles = r.Base + r.BranchStall + r.MemStall + r.FetchStall
	return r, nil
}

// IPC is a convenience: profiled micro-ops per predicted cycle.
func IPC(p *cpu.Profile, cfg cpu.CoreConfig) (float64, error) {
	r, err := Cycles(p, cfg)
	if err != nil {
		return 0, err
	}
	return float64(p.Uops) / r.Cycles, nil
}
