package perfmodel

import (
	"math"
	"sort"
	"testing"

	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/workload"
)

func sampleConfigs() []cpu.CoreConfig {
	big := cpu.CoreConfig{
		OoO: true, Width: 4, Predictor: cpu.PredTournament,
		IQ: 64, ROB: 128, PRFInt: 192, PRFFP: 160,
		IntALU: 6, IntMul: 2, FPALU: 4, LSQ: 32,
		L1I: cpu.L1Cfg64k, L1D: cpu.L1Cfg64k, L2: cpu.L2Cfg8M,
		UopCache: true, Fusion: true,
	}
	mid := cpu.CoreConfig{
		OoO: true, Width: 2, Predictor: cpu.PredGShare,
		IQ: 32, ROB: 64, PRFInt: 96, PRFFP: 64,
		IntALU: 3, IntMul: 1, FPALU: 2, LSQ: 16,
		L1I: cpu.L1Cfg32k, L1D: cpu.L1Cfg32k, L2: cpu.L2Cfg4M,
		UopCache: true, Fusion: true,
	}
	little := cpu.CoreConfig{
		OoO: false, Width: 1, Predictor: cpu.PredLocal,
		IQ: 32, ROB: 64, PRFInt: 64, PRFFP: 16,
		IntALU: 1, IntMul: 1, FPALU: 1, LSQ: 16,
		L1I: cpu.L1Cfg32k, L1D: cpu.L1Cfg32k, L2: cpu.L2Cfg4M,
		UopCache: false, Fusion: true,
	}
	io2 := little
	io2.Width = 2
	io2.IntALU = 3
	io2.UopCache = true
	return []cpu.CoreConfig{big, mid, little, io2}
}

func regionByName(t *testing.T, name string) workload.Region {
	t.Helper()
	for _, r := range workload.Regions() {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("unknown region %s", name)
	return workload.Region{}
}

// TestPerfModelAgainstDetailedSim bounds the interval model's divergence
// from the detailed cycle simulator: ratios must stay within a factor and
// the relative ORDER of configurations (what the search consumes) must be
// broadly preserved.
func TestPerfModelAgainstDetailedSim(t *testing.T) {
	fs := isa.X8664
	configs := sampleConfigs()
	names := []string{"astar.0", "bzip2.0", "gobmk.0", "hmmer.0", "lbm.0", "mcf.0", "milc.0", "sjeng.0"}
	worst := 0.0
	orderOK, orderTotal := 0, 0
	for _, name := range names {
		r := regionByName(t, name)
		f, m, err := r.Build(fs.Width)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := compiler.Compile(f, fs, compiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		prog.Name = r.Name
		prof, _, err := cpu.CollectProfile(prog, m.Clone(), 40_000_000)
		if err != nil {
			t.Fatal(err)
		}
		var modelC, simC []float64
		for _, cfg := range configs {
			pm, err := Cycles(prof, cfg)
			if err != nil {
				t.Fatal(err)
			}
			f2, m2, err := r.Build(fs.Width)
			if err != nil {
				t.Fatal(err)
			}
			prog2, err := compiler.Compile(f2, fs, compiler.Options{})
			if err != nil {
				t.Fatal(err)
			}
			_, tr, err := cpu.RunTimed(prog2, cpu.NewState(m2), cfg, 40_000_000)
			if err != nil {
				t.Fatal(err)
			}
			modelC = append(modelC, pm.Cycles)
			simC = append(simC, float64(tr.Cycles))
			ratio := pm.Cycles / float64(tr.Cycles)
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio > worst {
				worst = ratio
			}
			// The interval model is a search surrogate: the hard
			// requirement is preserved ordering; absolute divergence is
			// bounded loosely (dependent-miss chains, e.g. mcf's
			// pointer chase, are its weakest spot).
			if ratio > 4.5 {
				t.Errorf("%s on %s: model %.0f vs sim %d (ratio %.2f)", name, cfg.Name(), pm.Cycles, tr.Cycles, ratio)
			}
		}
		// Pairwise order agreement.
		for i := 0; i < len(configs); i++ {
			for j := i + 1; j < len(configs); j++ {
				// Skip near-ties.
				if math.Abs(simC[i]-simC[j])/math.Max(simC[i], simC[j]) < 0.10 {
					continue
				}
				orderTotal++
				if (modelC[i] < modelC[j]) == (simC[i] < simC[j]) {
					orderOK++
				}
			}
		}
	}
	if orderTotal > 0 && float64(orderOK)/float64(orderTotal) < 0.75 {
		t.Errorf("model preserves only %d/%d config orderings", orderOK, orderTotal)
	}
	t.Logf("worst model/sim ratio %.2f; order agreement %d/%d", worst, orderOK, orderTotal)
}

func TestCyclesMonotoneInWidth(t *testing.T) {
	r := regionByName(t, "bzip2.7") // ILP-rich bit packing
	f, m, err := r.Build(64)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := cpu.CollectProfile(prog, m, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	big := sampleConfigs()[0]
	narrow := big
	narrow.Width = 1
	narrow.IntALU = 1
	cb, err := Cycles(prof, big)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := Cycles(prof, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Cycles >= cn.Cycles {
		t.Errorf("wider core must be predicted faster: %.0f vs %.0f", cb.Cycles, cn.Cycles)
	}
}

func TestCyclesSensitiveToPredictor(t *testing.T) {
	r := regionByName(t, "sjeng.0") // mispredict-heavy
	f, m, err := r.Build(64)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := cpu.CollectProfile(prog, m, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if prof.MispredictRate[cpu.PredTournament] < 0.2 {
		t.Fatalf("sjeng.0 should be unpredictable, rate %.2f", prof.MispredictRate[cpu.PredTournament])
	}
	cfg := sampleConfigs()[1]
	res, err := Cycles(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BranchStall <= 0 || res.BranchStall < 0.1*res.Cycles {
		t.Errorf("branch stalls should be a major component: %.0f of %.0f", res.BranchStall, res.Cycles)
	}
}

func TestCyclesCacheConfigMatters(t *testing.T) {
	r := regionByName(t, "mcf.0") // L1-straddling pointer chase
	f, m, err := r.Build(64)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := cpu.CollectProfile(prog, m, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampleConfigs()[1]
	small, err := Cycles(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.L1D = cpu.L1Cfg64k
	cfg.L1I = cpu.L1Cfg64k
	big, err := Cycles(prof, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if big.Cycles >= small.Cycles {
		t.Errorf("bigger L1 must help the chase: %.0f vs %.0f", big.Cycles, small.Cycles)
	}
}

func TestCyclesRejectsUnprofiledCache(t *testing.T) {
	r := regionByName(t, "astar.0")
	f, m, err := r.Build(64)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := cpu.CollectProfile(prog, m, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampleConfigs()[0]
	cfg.L1D = cpu.CacheCfg{SizeKB: 128, Assoc: 8}
	if _, err := Cycles(prof, cfg); err == nil {
		t.Fatal("unprofiled cache config must be rejected")
	}
}

func TestIPCSorted(t *testing.T) {
	// The ILP curve must be monotone in window size.
	r := regionByName(t, "hmmer.0")
	f, m, err := r.Build(64)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := cpu.CollectProfile(prog, m, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var ws []int
	for w := range prof.IPCWindow {
		ws = append(ws, w)
	}
	sort.Ints(ws)
	for i := 1; i < len(ws); i++ {
		if prof.IPCWindow[ws[i]]+1e-9 < prof.IPCWindow[ws[i-1]] {
			t.Errorf("ILP curve not monotone: ipc(%d)=%.3f < ipc(%d)=%.3f",
				ws[i], prof.IPCWindow[ws[i]], ws[i-1], prof.IPCWindow[ws[i-1]])
		}
	}
}
