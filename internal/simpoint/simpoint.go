// Package simpoint implements the SimPoint methodology the paper uses to
// split benchmarks into representative regions: basic-block-vector (BBV)
// collection over fixed-length execution intervals, k-means clustering of
// the normalized vectors, and selection of each cluster's most central
// interval as the representative phase, weighted by cluster population.
package simpoint

import (
	"fmt"
	"math"
	"sort"

	"compisa/internal/code"
	"compisa/internal/cpu"
	"compisa/internal/mem"
)

// Interval is one execution interval's basic-block vector: execution counts
// per static basic-block leader, L1-normalized.
type Interval struct {
	Vector map[int32]float64
	Start  int64 // first dynamic instruction of the interval
}

// CollectBBV executes the program and gathers one BBV per intervalLen
// dynamic instructions. Basic blocks are identified by their leader
// instruction index (branch targets and fallthroughs after branches).
func CollectBBV(p *code.Program, m *mem.Memory, intervalLen int64, maxInstrs int64) ([]Interval, error) {
	if intervalLen <= 0 {
		return nil, fmt.Errorf("simpoint: interval length must be positive")
	}
	var out []Interval
	cur := map[int32]float64{}
	var count, start int64
	leader := int32(0)
	newBlock := true
	consume := func(ev *cpu.Event) {
		if newBlock {
			leader = ev.Idx
			newBlock = false
		}
		cur[leader]++
		in := &p.Instrs[ev.Idx]
		if in.Op.IsBranch() {
			newBlock = true
		}
		count++
		if count%intervalLen == 0 {
			out = append(out, Interval{Vector: normalize(cur), Start: start})
			cur = map[int32]float64{}
			start = count
		}
	}
	st := cpu.NewState(m)
	if _, err := cpu.Run(p, st, maxInstrs, consume); err != nil {
		return nil, err
	}
	if len(cur) > 0 && count-start >= intervalLen/2 {
		out = append(out, Interval{Vector: normalize(cur), Start: start})
	}
	return out, nil
}

func normalize(v map[int32]float64) map[int32]float64 {
	total := 0.0
	for _, c := range v {
		total += c
	}
	out := make(map[int32]float64, len(v))
	for k, c := range v {
		out[k] = c / total
	}
	return out
}

func dist2(a, b map[int32]float64) float64 {
	d := 0.0
	for k, va := range a {
		vb := b[k]
		d += (va - vb) * (va - vb)
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			d += vb * vb
		}
	}
	return d
}

// Phase is one representative region chosen by clustering.
type Phase struct {
	// Representative is the index of the chosen interval.
	Representative int
	// Weight is the fraction of intervals the phase represents.
	Weight float64
	// Members lists the assigned interval indices.
	Members []int
}

// KMeans clusters the intervals into at most k phases using deterministic
// k-means++-style seeding (farthest-point, seeded by the given value) and
// returns phases sorted by weight (descending).
func KMeans(intervals []Interval, k int, seed uint32) []Phase {
	n := len(intervals)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// Farthest-point seeding from a deterministic start.
	centroids := []map[int32]float64{intervals[int(seed)%n].Vector}
	for len(centroids) < k {
		bestIdx, bestD := 0, -1.0
		for i := range intervals {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := dist2(intervals[i].Vector, c); dd < d {
					d = dd
				}
			}
			if d > bestD {
				bestD, bestIdx = d, i
			}
		}
		if bestD <= 1e-12 {
			break // all remaining points coincide with centroids
		}
		centroids = append(centroids, intervals[bestIdx].Vector)
	}
	k = len(centroids)
	assign := make([]int, n)
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i := range intervals {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := dist2(intervals[i].Vector, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		sums := make([]map[int32]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = map[int32]float64{}
		}
		for i := range intervals {
			c := assign[i]
			counts[c]++
			for key, v := range intervals[i].Vector {
				sums[c][key] += v
			}
		}
		for c := range sums {
			if counts[c] == 0 {
				continue
			}
			for key := range sums[c] {
				sums[c][key] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
	}
	// Build phases: representative = member closest to centroid.
	var phases []Phase
	for c := 0; c < k; c++ {
		var members []int
		for i := range intervals {
			if assign[i] == c {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		rep, repD := members[0], math.Inf(1)
		for _, i := range members {
			if d := dist2(intervals[i].Vector, centroids[c]); d < repD {
				rep, repD = i, d
			}
		}
		phases = append(phases, Phase{
			Representative: rep,
			Weight:         float64(len(members)) / float64(n),
			Members:        members,
		})
	}
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].Weight != phases[j].Weight {
			return phases[i].Weight > phases[j].Weight
		}
		return phases[i].Representative < phases[j].Representative
	})
	return phases
}
