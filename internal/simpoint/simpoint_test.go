package simpoint

import (
	"testing"

	"compisa/internal/compiler"
	"compisa/internal/ir"
	"compisa/internal/isa"
	"compisa/internal/mem"
	"compisa/internal/workload"
)

// twoPhaseProgram: a loop of integer arithmetic followed by a loop of
// memory traffic — two clearly distinct phases.
func twoPhaseProgram(t *testing.T) (*irProg, *mem.Memory) {
	t.Helper()
	b := ir.NewBuilder("twophase")
	l1, l2, exit := b.Block("l1"), b.Block("l2"), b.Block("exit")
	base := b.Const(ir.Ptr, 0x08000000)
	i := b.Const(ir.I32, 0)
	acc := b.Const(ir.I32, 1)
	lim := b.Const(ir.I32, 4000)
	b.Br(l1)
	b.SetBlock(l1)
	b.Assign(acc, ir.Add, ir.I32, acc, acc)
	b.Assign(acc, ir.Xor, ir.I32, acc, i)
	b.AddImm(i, i, ir.I32, 1)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, l1, l2, 0.99)
	b.SetBlock(l2)
	idx := b.Bin(ir.And, ir.I32, i, b.Const(ir.I32, 1023))
	b.Store(ir.I32, acc, base, idx, 4, 0)
	v := b.Load(ir.I32, base, idx, 4, 0)
	b.Assign(acc, ir.Add, ir.I32, acc, v)
	b.AddImm(i, i, ir.I32, 1)
	c2 := b.Cmp(ir.LT, ir.I32, i, b.Const(ir.I32, 8000))
	b.CondBr(c2, l2, exit, 0.99)
	b.SetBlock(exit)
	b.Ret(acc)
	return &irProg{f: b.F}, mem.New()
}

type irProg struct{ f *ir.Func }

func TestBBVAndKMeansSeparatePhases(t *testing.T) {
	p, m := twoPhaseProgram(t)
	prog, err := compiler.Compile(p.f, isa.X8664, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := CollectBBV(prog, m, 2000, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) < 8 {
		t.Fatalf("expected several intervals, got %d", len(ivs))
	}
	phases := KMeans(ivs, 2, 1)
	if len(phases) < 2 {
		t.Fatalf("two-phase program should yield >= 2 clusters, got %d", len(phases))
	}
	// The two phases must be genuinely distinct code (disjoint dominant
	// basic blocks) and ordered in time.
	r0, r1 := phases[0].Representative, phases[1].Representative
	if d := dist2(ivs[r0].Vector, ivs[r1].Vector); d < 0.5 {
		t.Errorf("phase representatives should differ strongly, dist2 = %f", d)
	}
	// The two clusters must be temporally separated: order them by their
	// representatives and check that at most one boundary interval of the
	// later cluster precedes the earlier cluster's last member.
	a, b := phases[0], phases[1]
	if ivs[a.Representative].Start > ivs[b.Representative].Start {
		a, b = b, a
	}
	maxA := int64(-1)
	for _, m := range a.Members {
		if ivs[m].Start > maxA {
			maxA = ivs[m].Start
		}
	}
	straddlers := 0
	for _, m := range b.Members {
		if ivs[m].Start < maxA {
			straddlers++
		}
	}
	if straddlers > 1 {
		t.Errorf("phases should be temporally separated; %d straddlers", straddlers)
	}
	// Weights sum to 1.
	sum := 0.0
	for _, ph := range phases {
		sum += ph.Weight
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %f", sum)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	p, m := twoPhaseProgram(t)
	prog, err := compiler.Compile(p.f, isa.X8664, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := CollectBBV(prog, m, 2000, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	a := KMeans(ivs, 3, 1)
	b := KMeans(ivs, 3, 1)
	if len(a) != len(b) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a {
		if a[i].Representative != b[i].Representative || a[i].Weight != b[i].Weight {
			t.Fatal("nondeterministic clustering")
		}
	}
}

func TestBBVOnWorkloadRegion(t *testing.T) {
	var reg workload.Region
	for _, r := range workload.Regions() {
		if r.Name == "bzip2.0" {
			reg = r
		}
	}
	f, m, err := reg.Build(64)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := CollectBBV(prog, m, 5000, 40_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) == 0 {
		t.Fatal("no intervals collected")
	}
	phases := KMeans(ivs, 6, 2)
	if len(phases) == 0 {
		t.Fatal("no phases")
	}
	// Structural invariants: every interval assigned exactly once,
	// weights sum to 1, representatives are members of their own cluster.
	covered := map[int]bool{}
	sum := 0.0
	for _, ph := range phases {
		sum += ph.Weight
		repOK := false
		for _, m := range ph.Members {
			if covered[m] {
				t.Fatalf("interval %d assigned twice", m)
			}
			covered[m] = true
			if m == ph.Representative {
				repOK = true
			}
		}
		if !repOK {
			t.Error("representative not a member of its cluster")
		}
	}
	if len(covered) != len(ivs) {
		t.Errorf("clusters cover %d of %d intervals", len(covered), len(ivs))
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %f", sum)
	}
}

func TestCollectBBVValidatesInterval(t *testing.T) {
	if _, err := CollectBBV(nil, nil, 0, 0); err == nil {
		t.Fatal("zero interval length must error")
	}
}
