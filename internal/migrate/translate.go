// Package migrate implements process migration across composite-ISA cores.
// Migrations to a core whose feature set subsumes the code's are free
// ("upgrades": native execution, no state transformation). Migrations to a
// core missing features ("downgrades") apply the minimal binary translations
// of Section IV.B: reverse if-conversion for predication, long-mode
// emulation through the register context block for 64-bit code on 32-bit
// cores, register-context-block emulation of registers beyond the target's
// register depth, and addressing-mode transformation from x86 memory
// operands to microx86 load-compute-store sequences.
//
// The translations are real program rewrites: the translated binary executes
// on the functional executor and must produce the identical checksum, which
// the package's differential tests verify.
package migrate

import (
	"fmt"

	"compisa/internal/code"
	"compisa/internal/encoding"
	"compisa/internal/isa"
)

// ctxAddr returns the register-context-block slot of architectural register
// r: 16 bytes per register (low word, high word, padding).
func ctxAddr(r code.Reg) int32 { return code.ContextBase + int32(r)*16 }

// ctxHiAddr returns the slot holding the emulated high 32 bits of register r
// under long-mode emulation.
func ctxHiAddr(r code.Reg) int32 { return ctxAddr(r) + 8 }

// saveAddr returns the k-th scratch-save slot used by translated sequences
// to free an architectural register. Each translation pass owns a disjoint
// slot range: a later pass's per-instruction expansion can fall INSIDE an
// earlier pass's save/restore window, so sharing a slot would clobber the
// saved value (the differential fuzzer caught exactly that).
func saveAddr(k int) int32 { return code.ContextBase + 0x10000 + int32(k)*16 }

// Per-pass save-slot bases.
const (
	saveBaseWidth     = 0  // narrowWidth uses slots 0..3
	saveBaseDepth     = 4  // lowerDepth uses slots 4..9
	saveBaseDecompose = 10 // decompose uses slot 10
)

// Translate rewrites a program compiled for prog.FS so it executes natively
// on a core implementing feature set target. An upgrade (target subsumes the
// program) returns the program unchanged. SIMD downgrades are not
// translatable — schedulers run the precompiled scalar version instead — and
// return an error.
func Translate(prog *code.Program, target isa.FeatureSet) (*code.Program, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if target.Subsumes(prog.FS) {
		return prog, nil
	}
	downs := map[isa.DowngradeKind]bool{}
	for _, d := range isa.Downgrades(prog.FS, target) {
		downs[d] = true
	}
	if downs[isa.DowngradeSIMD] && programUsesSIMD(prog) {
		return nil, fmt.Errorf("migrate: %s uses SIMD; run the scalar-compiled binary instead", prog.Name)
	}
	cur := prog
	var err error
	// Pass order matters: predication is removed first (no predicated
	// context-block traffic to reason about), then width and depth
	// emulation — which may emit x86 memory-operand forms — and finally
	// addressing-mode decomposition legalizes everything for microx86
	// targets. Intermediate programs are labeled with full-x86
	// complexity, of which microx86 code is a subset.
	if downs[isa.DowngradePredication] {
		if cur, err = reverseIfConvert(cur); err != nil {
			return nil, fmt.Errorf("migrate: %s predication downgrade: %w", prog.Name, err)
		}
	}
	lifted := cur.FS
	lifted.Complexity = isa.FullX86
	if cur, err = retarget(cur, lifted); err != nil {
		return nil, fmt.Errorf("migrate: %s: %w", prog.Name, err)
	}
	if downs[isa.DowngradeWidth] {
		// Folded 64-bit memory operands must become explicit loads first:
		// the widener emulates high words through registers' context
		// slots, which memory operands do not have.
		if cur, err = decompose(cur, true); err != nil {
			return nil, fmt.Errorf("migrate: %s width downgrade: %w", prog.Name, err)
		}
		if cur, err = narrowWidth(cur); err != nil {
			return nil, fmt.Errorf("migrate: %s width downgrade: %w", prog.Name, err)
		}
	}
	if downs[isa.DowngradeDepth] {
		if cur, err = lowerDepth(cur, target.Depth); err != nil {
			return nil, fmt.Errorf("migrate: %s depth downgrade: %w", prog.Name, err)
		}
	}
	if target.Complexity == isa.MicroX86 {
		if cur, err = decompose(cur, false); err != nil {
			return nil, fmt.Errorf("migrate: %s complexity downgrade: %w", prog.Name, err)
		}
	}
	// Final feature set: exactly the target.
	return retarget(cur, target)
}

func programUsesSIMD(p *code.Program) bool {
	for i := range p.Instrs {
		if p.Instrs[i].Op.IsVector() {
			return true
		}
	}
	return false
}

// retarget relabels and relays out a program under a new feature set,
// validating conformance.
func retarget(p *code.Program, fs isa.FeatureSet) (*code.Program, error) {
	np := &code.Program{Name: p.Name, FS: fs, Instrs: p.Instrs, Pool: p.Pool, Stats: p.Stats}
	if err := encoding.Layout(np, code.CodeBase); err != nil {
		return nil, err
	}
	if err := np.Validate(); err != nil {
		return nil, err
	}
	return np, nil
}

// rewriter builds a translated instruction stream with branch-target fixups.
type rewriter struct {
	src    *code.Program
	out    []code.Instr
	newIdx []int32 // old index -> first new index
}

func newRewriter(p *code.Program) *rewriter {
	return &rewriter{src: p, newIdx: make([]int32, len(p.Instrs))}
}

func (rw *rewriter) beginInstr(oldIdx int) { rw.newIdx[oldIdx] = int32(len(rw.out)) }

func (rw *rewriter) push(in code.Instr) { rw.out = append(rw.out, in) }

// finish remaps branch targets and produces the program under fs.
func (rw *rewriter) finish(fs isa.FeatureSet, suffix string) (*code.Program, error) {
	for i := range rw.out {
		in := &rw.out[i]
		if in.Op == code.JCC || in.Op == code.JMP {
			if in.Target >= 0 && int(in.Target) < len(rw.newIdx) {
				in.Target = rw.newIdx[in.Target]
			}
		}
	}
	np := &code.Program{Name: rw.src.Name + suffix, FS: fs, Instrs: rw.out,
		Pool: rw.src.Pool, Stats: rw.src.Stats}
	if err := encoding.Layout(np, code.CodeBase); err != nil {
		return nil, err
	}
	if err := np.Validate(); err != nil {
		return nil, err
	}
	return np, nil
}

// localTarget marks forward branches emitted inside one expansion; they are
// resolved before global remapping by storing negative offsets.
const localBranchBias = 1 << 24

func ci(op code.Op, sz uint8) code.Instr {
	return code.Instr{Op: op, Sz: sz, Dst: code.NoReg, Src1: code.NoReg,
		Src2: code.NoReg, Pred: code.NoReg, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}
}

func absMem(disp int32) code.Mem {
	return code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1, Disp: disp}
}

// scratchPicker selects architectural registers not referenced by an
// instruction, lowest first, bounded by depth.
func scratchPicker(in *code.Instr, depth int) func() (code.Reg, error) {
	used := map[code.Reg]bool{}
	var regs []code.Reg
	regs = in.IntRegs(regs)
	for _, r := range regs {
		used[r] = true
	}
	next := code.Reg(0)
	return func() (code.Reg, error) {
		for int(next) < depth {
			r := next
			next++
			if !used[r] {
				used[r] = true
				return r, nil
			}
		}
		return 0, fmt.Errorf("no scratch register available below depth %d", depth)
	}
}

// reverseIfConvert translates fully predicated code back to control
// dependences: each maximal run of instructions sharing a predicate becomes
// a TEST + conditional branch over the unpredicated run (Section IV.B's
// "simple reverse if-conversions").
func reverseIfConvert(p *code.Program) (*code.Program, error) {
	rw := newRewriter(p)
	// Branch targets break predicate runs.
	isTarget := make([]bool, len(p.Instrs))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == code.JCC || in.Op == code.JMP {
			isTarget[in.Target] = true
		}
	}
	i := 0
	for i < len(p.Instrs) {
		in := p.Instrs[i]
		if !in.Predicated() {
			rw.beginInstr(i)
			rw.push(in)
			i++
			continue
		}
		// Collect the run of same-predicate instructions.
		pred, sense := in.Pred, in.PredSense
		j := i
		for j < len(p.Instrs) {
			nx := &p.Instrs[j]
			if nx.Pred != pred || nx.PredSense != sense {
				break
			}
			if j > i && isTarget[j] {
				break
			}
			j++
		}
		// TEST pred, pred; skip the run when the sense does not hold:
		// run executes when (pred != 0) == sense.
		rw.beginInstr(i)
		tst := ci(code.TEST, 4)
		tst.Src1, tst.Src2 = pred, pred
		rw.push(tst)
		br := ci(code.JCC, 0)
		if sense {
			br.CC = code.CCEQ // pred == 0: skip
		} else {
			br.CC = code.CCNE
		}
		br.TakenProb = 0.5
		brAt := len(rw.out)
		rw.push(br)
		for k := i; k < j; k++ {
			if k > i {
				rw.beginInstr(k)
			}
			run := p.Instrs[k]
			run.Pred = code.NoReg
			run.PredSense = false
			rw.push(run)
		}
		// The branch skips to the instruction after the run; encode as a
		// local absolute new-index (already final within rw.out).
		rw.out[brAt].Target = int32(len(rw.out)) + localBranchBias
		i = j
	}
	// Resolve local branches (marked by the bias) before global remap.
	for k := range rw.out {
		in := &rw.out[k]
		if (in.Op == code.JCC || in.Op == code.JMP) && in.Target >= localBranchBias {
			in.Target -= localBranchBias
			// Mark as already-final by pointing the remap at itself:
			// temporarily store the final index negated below.
			in.Target = -in.Target - 1
		}
	}
	fs := p.FS
	fs.Predication = isa.PartialPredication
	np, err := rw.finishWithLocal(fs, "+rpred")
	return np, err
}

// finishWithLocal is finish() for passes that mix local (already-final,
// stored negated) and global (old-index) branch targets.
func (rw *rewriter) finishWithLocal(fs isa.FeatureSet, suffix string) (*code.Program, error) {
	for i := range rw.out {
		in := &rw.out[i]
		if in.Op != code.JCC && in.Op != code.JMP {
			continue
		}
		if in.Target < 0 {
			in.Target = -(in.Target + 1) // already final
			continue
		}
		in.Target = rw.newIdx[in.Target]
	}
	np := &code.Program{Name: rw.src.Name + suffix, FS: fs, Instrs: rw.out,
		Pool: rw.src.Pool, Stats: rw.src.Stats}
	if err := encoding.Layout(np, code.CodeBase); err != nil {
		return nil, err
	}
	if err := np.Validate(); err != nil {
		return nil, err
	}
	return np, nil
}

// decompose translates x86 memory-operand ALU instructions into microx86
// load-compute-store form, freeing a register around each via the context
// block (addressing-mode transformation). With only64 set it expands only
// 64-bit memory operands — the pre-pass long-mode emulation needs, since a
// folded 8-byte memory read has no register operand whose high word could
// live in the context block.
func decompose(p *code.Program, only64 bool) (*code.Program, error) {
	rw := newRewriter(p)
	for i := range p.Instrs {
		in := p.Instrs[i]
		rw.beginInstr(i)
		if !in.MemSrcALU() || (only64 && (in.Sz != 8 || in.Op.IsFP())) {
			rw.push(in)
			continue
		}
		pick := scratchPicker(&in, p.FS.Depth)
		t, err := pick()
		if err != nil {
			return nil, err
		}
		// ST t, [save]; LD t, [mem]; OP ..., t; LD t, [save].
		sv := ci(code.ST, uint8(p.FS.Width/8))
		sv.Src1 = t
		sv.HasMem, sv.Mem = true, absMem(saveAddr(saveBaseDecompose))
		rw.push(sv)
		ld := ci(code.LD, in.Sz)
		ld.Dst = t
		ld.HasMem, ld.Mem = true, in.Mem
		rw.push(ld)
		op := in
		op.HasMem = false
		op.Mem = code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}
		if op.Op == code.CMOVCC {
			op.Src1 = t // CMOV's value operand is Src1
		} else {
			op.Src2 = t
		}
		rw.push(op)
		rs := ci(code.LD, uint8(p.FS.Width/8))
		rs.Dst = t
		rs.HasMem, rs.Mem = true, absMem(saveAddr(saveBaseDecompose))
		rw.push(rs)
	}
	fs := p.FS
	if !only64 {
		fs.Complexity = isa.MicroX86
	}
	return rw.finish(fs, "+ux86")
}
