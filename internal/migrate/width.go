package migrate

import (
	"fmt"

	"compisa/internal/code"
	"compisa/internal/isa"
)

// narrowWidth performs long-mode emulation: 64-bit code is rewritten to run
// on a 32-bit core. Each architectural register's low 32 bits stay in the
// register; the high 32 bits live in the register context block. 32-bit
// instructions pass through unchanged; every 64-bit integer instruction
// expands into a pair sequence that manipulates the high words in memory,
// freeing scratch registers around it through the context block's save
// slots. (The paper emulates wide types with fat pointers held in xmm
// registers; a memory-resident context block is the equivalent mechanism
// with the same extra-instruction cost profile.)
//
// Pointer values are guaranteed below 4 GiB by the memory map, so address
// arithmetic needs only the low words.
func narrowWidth(p *code.Program) (*code.Program, error) {
	rw := newRewriter(p)
	w := &widener{rw: rw, p: p}
	for i := range p.Instrs {
		rw.beginInstr(i)
		if err := w.instr(i); err != nil {
			return nil, fmt.Errorf("narrow %s[%d] (%s): %w", p.Name, i, code.FormatInstr(&p.Instrs[i]), err)
		}
	}
	fs := p.FS
	fs.Width = 32
	return rw.finishWithLocal(fs, "+w32")
}

type widener struct {
	rw *rewriter
	p  *code.Program
}

// saveReg emits "ST r, [save_k]" and returns a closure restoring it.
func (w *widener) saveReg(r code.Reg, k int, pred code.Reg, sense bool) func() {
	sv := ci(code.ST, 4)
	sv.Src1 = r
	sv.HasMem, sv.Mem = true, absMem(saveAddr(k))
	w.rw.push(sv)
	return func() {
		rs := ci(code.LD, 4)
		rs.Dst = r
		rs.HasMem, rs.Mem = true, absMem(saveAddr(k))
		w.rw.push(rs)
	}
}

func (w *widener) loadHi(dst, src code.Reg, pred code.Reg, sense bool) {
	ld := ci(code.LD, 4)
	ld.Dst = dst
	ld.HasMem, ld.Mem = true, absMem(ctxHiAddr(src))
	w.rw.push(ld)
}

func (w *widener) storeHi(src, dst code.Reg, pred code.Reg, sense bool) {
	st := ci(code.ST, 4)
	st.Src1 = src
	st.HasMem, st.Mem = true, absMem(ctxHiAddr(dst))
	st.Pred, st.PredSense = pred, sense
	w.rw.push(st)
}

// instr translates one instruction.
func (w *widener) instr(idx int) error {
	in := w.p.Instrs[idx]
	rw := w.rw
	// FP-family and 32-bit instructions run unchanged; SSE scalar doubles
	// (FLD/FST/FADD... with Sz 8) are legal on 32-bit cores.
	if in.Sz != 8 || in.Op.IsFP() || in.Op == code.FST || in.Op == code.VST || in.Op == code.FCMP || in.Op == code.CVTFI {
		rw.push(in)
		return nil
	}

	pred, sense := in.Pred, in.PredSense
	pick := scratchPicker(&in, w.p.FS.Depth)
	narrow := func(i code.Instr) code.Instr {
		i.Sz = 4
		return i
	}

	switch in.Op {
	case code.MOV:
		if in.HasImm {
			lo := narrow(in)
			lo.Imm = int64(uint32(uint64(in.Imm)))
			rw.push(lo)
			t, err := pick()
			if err != nil {
				return err
			}
			restore := w.saveReg(t, 0, pred, sense)
			mh := ci(code.MOV, 4)
			mh.Dst = t
			mh.HasImm, mh.Imm = true, int64(uint32(uint64(in.Imm)>>32))
			mh.Pred, mh.PredSense = pred, sense
			rw.push(mh)
			w.storeHi(t, in.Dst, pred, sense)
			restore()
			return nil
		}
		rw.push(narrow(in))
		t, err := pick()
		if err != nil {
			return err
		}
		restore := w.saveReg(t, 0, pred, sense)
		w.loadHi(t, in.Src1, pred, sense)
		w.storeHi(t, in.Dst, pred, sense)
		restore()
		return nil

	case code.MOVSX:
		lo := ci(code.MOV, 4)
		lo.Dst, lo.Src1 = in.Dst, in.Src1
		lo.Pred, lo.PredSense = pred, sense
		rw.push(lo)
		t, err := pick()
		if err != nil {
			return err
		}
		restore := w.saveReg(t, 0, pred, sense)
		mv := ci(code.MOV, 4)
		mv.Dst, mv.Src1 = t, in.Src1
		rw.push(mv)
		sar := ci(code.SAR, 4)
		sar.Dst, sar.Src1 = t, t
		sar.HasImm, sar.Imm = true, 31
		rw.push(sar)
		w.storeHi(t, in.Dst, pred, sense)
		restore()
		return nil

	case code.LEA:
		rw.push(narrow(in))
		return nil

	case code.LD:
		rw.push(narrow(in))
		t, err := pick()
		if err != nil {
			return err
		}
		restore := w.saveReg(t, 0, pred, sense)
		hi := ci(code.LD, 4)
		hi.Dst = t
		hi.HasMem = true
		hi.Mem = in.Mem
		hi.Mem.Disp += 4
		rw.push(hi)
		w.storeHi(t, in.Dst, pred, sense)
		restore()
		return nil

	case code.ST:
		rw.push(narrow(in))
		t, err := pick()
		if err != nil {
			return err
		}
		restore := w.saveReg(t, 0, pred, sense)
		w.loadHi(t, in.Src1, pred, sense)
		hi := ci(code.ST, 4)
		hi.Src1 = t
		hi.HasMem = true
		hi.Mem = in.Mem
		hi.Mem.Disp += 4
		hi.Pred, hi.PredSense = pred, sense
		rw.push(hi)
		restore()
		return nil

	case code.ADD, code.SUB, code.AND, code.OR, code.XOR:
		// Low halves in place (sets CF for the carry chain).
		rw.push(narrow(in))
		t, err := pick()
		if err != nil {
			return err
		}
		restore := w.saveReg(t, 0, pred, sense)
		w.loadHi(t, in.Dst, pred, sense)
		var hiOp code.Op
		switch in.Op {
		case code.ADD:
			hiOp = code.ADC
		case code.SUB:
			hiOp = code.SBB
		default:
			hiOp = in.Op
		}
		hi := ci(hiOp, 4)
		hi.Dst, hi.Src1 = t, t
		hi.Pred, hi.PredSense = pred, sense
		if in.HasImm {
			hi.HasImm = true
			hi.Imm = int64(uint32(uint64(in.Imm) >> 32))
			if in.Imm < 0 && (in.Op == code.ADD || in.Op == code.SUB || in.Op == code.AND || in.Op == code.OR || in.Op == code.XOR) {
				hi.Imm = int64(uint32(uint64(in.Imm) >> 32)) // sign bits included
			}
		} else {
			hi.HasMem, hi.Mem = true, absMem(ctxHiAddr(in.Src2))
		}
		rw.push(hi)
		w.storeHi(t, in.Dst, pred, sense)
		restore()
		return nil

	case code.IMUL:
		// Multiplies at 64 bits appear only in address arithmetic, whose
		// values stay below 2^32; the low product suffices, and the high
		// word is cleared.
		rw.push(narrow(in))
		t, err := pick()
		if err != nil {
			return err
		}
		restore := w.saveReg(t, 0, pred, sense)
		z := ci(code.MOV, 4)
		z.Dst = t
		z.HasImm, z.Imm = true, 0
		z.Pred, z.PredSense = pred, sense
		rw.push(z)
		w.storeHi(t, in.Dst, pred, sense)
		restore()
		return nil

	case code.SHL, code.SHR, code.SAR:
		return w.shift(in, pick)

	case code.CMP:
		return w.cmp64(idx, in, pick)

	case code.TEST:
		// a & b == 0 over 64 bits: OR of (lo&lo) and (hi&hi).
		t, err := pick()
		if err != nil {
			return err
		}
		t2, err := pick()
		if err != nil {
			return err
		}
		r1 := w.saveReg(t, 0, pred, sense)
		r2 := w.saveReg(t2, 1, pred, sense)
		mv := ci(code.MOV, 4)
		mv.Dst, mv.Src1 = t, in.Src1
		rw.push(mv)
		and := ci(code.AND, 4)
		and.Dst, and.Src1, and.Src2 = t, t, in.Src2
		rw.push(and)
		w.loadHi(t2, in.Src1, pred, sense)
		and2 := ci(code.AND, 4)
		and2.Dst, and2.Src1 = t2, t2
		and2.HasMem, and2.Mem = true, absMem(ctxHiAddr(in.Src2))
		rw.push(and2)
		or := ci(code.OR, 4)
		or.Dst, or.Src1, or.Src2 = t, t, t2
		rw.push(or)
		r2()
		r1()
		return nil

	case code.SETCC:
		rw.push(narrow(in))
		return nil

	case code.CMOVCC:
		// Low: unchanged at 32 bits (flags preserved). High: CMOV from
		// the source's context slot into the destination's.
		rw.push(narrow(in))
		t, err := pick()
		if err != nil {
			return err
		}
		restore := w.saveReg(t, 0, pred, sense)
		w.loadHi(t, in.Dst, pred, sense)
		cm := ci(code.CMOVCC, 4)
		cm.Dst, cm.CC = t, in.CC
		cm.HasMem, cm.Mem = true, absMem(ctxHiAddr(in.Src1))
		rw.push(cm)
		w.storeHi(t, in.Dst, pred, sense)
		restore()
		return nil

	case code.RET, code.JMP, code.JCC, code.NOP:
		rw.push(in)
		return nil
	}
	return fmt.Errorf("unhandled 64-bit op %v", in.Op)
}

// shift expands a 64-bit shift by constant k (1..31).
func (w *widener) shift(in code.Instr, pick func() (code.Reg, error)) error {
	rw := w.rw
	k := in.Imm
	if k < 1 || k > 31 {
		return fmt.Errorf("64-bit shift by %d not emulatable", k)
	}
	pred, sense := in.Pred, in.PredSense
	t, err := pick()
	if err != nil {
		return err
	}
	t2, err := pick()
	if err != nil {
		return err
	}
	r1 := w.saveReg(t, 0, pred, sense)
	r2 := w.saveReg(t2, 1, pred, sense)
	d := in.Dst
	sh := func(dst code.Reg, op code.Op, n int64, p code.Reg, s bool) {
		i := ci(op, 4)
		i.Dst, i.Src1 = dst, dst
		i.HasImm, i.Imm = true, n
		i.Pred, i.PredSense = p, s
		rw.push(i)
	}
	switch in.Op {
	case code.SHL:
		// hi = (hi << k) | (lo >> (32-k)); lo <<= k.
		w.loadHi(t, d, pred, sense)
		sh(t, code.SHL, k, code.NoReg, false)
		mv := ci(code.MOV, 4)
		mv.Dst, mv.Src1 = t2, d
		rw.push(mv)
		sh(t2, code.SHR, 32-k, code.NoReg, false)
		or := ci(code.OR, 4)
		or.Dst, or.Src1, or.Src2 = t, t, t2
		rw.push(or)
		w.storeHi(t, d, pred, sense)
		lo := ci(code.SHL, 4)
		lo.Dst, lo.Src1 = d, d
		lo.HasImm, lo.Imm = true, k
		lo.Pred, lo.PredSense = pred, sense
		rw.push(lo)
	case code.SHR, code.SAR:
		// lo = (lo >> k) | (hi << (32-k)); hi >>= k (arith for SAR).
		w.loadHi(t, d, pred, sense)
		mv := ci(code.MOV, 4)
		mv.Dst, mv.Src1 = t2, t
		rw.push(mv)
		sh(t2, code.SHL, 32-k, code.NoReg, false)
		lo := ci(code.SHR, 4)
		lo.Dst, lo.Src1 = d, d
		lo.HasImm, lo.Imm = true, k
		lo.Pred, lo.PredSense = pred, sense
		rw.push(lo)
		or := ci(code.OR, 4)
		or.Dst, or.Src1, or.Src2 = d, d, t2
		or.Pred, or.PredSense = pred, sense
		rw.push(or)
		sh(t, in.Op, k, code.NoReg, false)
		w.storeHi(t, d, pred, sense)
	}
	r2()
	r1()
	return nil
}

// cmp64 expands a 64-bit compare, choosing the equality (XOR/OR) or
// relational (CMP/SBB) flag idiom by inspecting the next flag consumer.
func (w *widener) cmp64(idx int, in code.Instr, pick func() (code.Reg, error)) error {
	rw := w.rw
	cc := w.nextConsumerCC(idx)
	t, err := pick()
	if err != nil {
		return err
	}
	restore := w.saveReg(t, 0, in.Pred, in.PredSense)
	b2 := func(i *code.Instr) {
		if in.HasImm {
			i.HasImm = true
			i.Imm = int64(uint32(uint64(in.Imm)))
		} else {
			i.Src2 = in.Src2
		}
	}
	hi2 := func(i *code.Instr) {
		if in.HasImm {
			i.HasImm = true
			i.Imm = int64(uint32(uint64(in.Imm) >> 32))
		} else {
			i.HasMem, i.Mem = true, absMem(ctxHiAddr(in.Src2))
		}
	}
	switch cc {
	case code.CCEQ, code.CCNE:
		t2, err := pick()
		if err != nil {
			return err
		}
		r2 := w.saveReg(t2, 1, in.Pred, in.PredSense)
		mv := ci(code.MOV, 4)
		mv.Dst, mv.Src1 = t, in.Src1
		rw.push(mv)
		x1 := ci(code.XOR, 4)
		x1.Dst, x1.Src1 = t, t
		b2(&x1)
		rw.push(x1)
		w.loadHi(t2, in.Src1, code.NoReg, false)
		x2 := ci(code.XOR, 4)
		x2.Dst, x2.Src1 = t2, t2
		hi2(&x2)
		rw.push(x2)
		or := ci(code.OR, 4)
		or.Dst, or.Src1, or.Src2 = t, t, t2
		rw.push(or)
		r2()
	default:
		// CMP lo; SBB of the highs leaves SF/OF/CF correct.
		cmp := ci(code.CMP, 4)
		cmp.Src1 = in.Src1
		b2(&cmp)
		rw.push(cmp)
		w.loadHi(t, in.Src1, code.NoReg, false)
		sbb := ci(code.SBB, 4)
		sbb.Dst, sbb.Src1 = t, t
		hi2(&sbb)
		rw.push(sbb)
	}
	restore()
	return nil
}

// nextConsumerCC scans forward for the first flag consumer after idx.
func (w *widener) nextConsumerCC(idx int) code.CC {
	for j := idx + 1; j < len(w.p.Instrs); j++ {
		in := &w.p.Instrs[j]
		if in.Op.ReadsFlags() {
			return in.CC
		}
		if in.Op.WritesFlags() {
			break
		}
	}
	return code.CCLT
}

// lowerDepth emulates registers at or above the target register depth
// through the register context block: each instruction referencing high
// registers frees low registers via save slots, loads the high registers'
// values, runs, and writes results back (Section IV.B's register context
// block technique [15], [104], [105]).
func lowerDepth(p *code.Program, depth int) (*code.Program, error) {
	rw := newRewriter(p)
	for i := range p.Instrs {
		in := p.Instrs[i]
		rw.beginInstr(i)
		var regs []code.Reg
		regs = in.IntRegs(regs)
		var high []code.Reg
		seen := map[code.Reg]bool{}
		for _, r := range regs {
			if int(r) >= depth && !seen[r] {
				high = append(high, r)
				seen[r] = true
			}
		}
		var fpHigh []code.Reg
		fpLimit := isa.FeatureSet{Complexity: p.FS.Complexity, Width: p.FS.Width,
			Depth: depth, Predication: p.FS.Predication}.FPRegs()
		var fregs []code.Reg
		fregs = in.FPRegs(fregs)
		fseen := map[code.Reg]bool{}
		for _, r := range fregs {
			if int(r) >= fpLimit && !fseen[r] {
				fpHigh = append(fpHigh, r)
				fseen[r] = true
			}
		}
		if len(high) == 0 && len(fpHigh) == 0 {
			rw.push(in)
			continue
		}
		if len(fpHigh) > 0 {
			return nil, fmt.Errorf("lowerDepth %s[%d]: fp register above target file", p.Name, i)
		}
		pick := scratchPickerLow(&in, depth)
		sub := map[code.Reg]code.Reg{}
		written := writesReg(&in)
		var restores []func()
		for k, h := range high {
			s, err := pick()
			if err != nil {
				return nil, fmt.Errorf("lowerDepth %s[%d]: %w", p.Name, i, err)
			}
			sub[h] = s
			slot := saveBaseDepth + k
			// Free the low register, then load the high register's
			// current value from the context block.
			sv := ci(code.ST, uint8(p.FS.Width/8))
			sv.Src1 = s
			sv.HasMem, sv.Mem = true, absMem(saveAddr(slot))
			rw.push(sv)
			ld := ci(code.LD, uint8(p.FS.Width/8))
			ld.Dst = s
			ld.HasMem, ld.Mem = true, absMem(ctxAddr(h))
			rw.push(ld)
			restores = append(restores, func() {
				if written == h {
					st := ci(code.ST, uint8(p.FS.Width/8))
					st.Src1 = s
					st.HasMem, st.Mem = true, absMem(ctxAddr(h))
					rw.push(st)
				}
				rs := ci(code.LD, uint8(p.FS.Width/8))
				rs.Dst = s
				rs.HasMem, rs.Mem = true, absMem(saveAddr(slot))
				rw.push(rs)
			})
		}
		out := in
		remap := func(r code.Reg) code.Reg {
			if s, ok := sub[r]; ok {
				return s
			}
			return r
		}
		if out.Dst != code.NoReg && !out.Op.IsFP() {
			out.Dst = remap(out.Dst)
		}
		if !srcIsFP(out.Op) {
			if out.Src1 != code.NoReg {
				out.Src1 = remap(out.Src1)
			}
			if out.Src2 != code.NoReg {
				out.Src2 = remap(out.Src2)
			}
		}
		if out.HasMem {
			if out.Mem.Base != code.NoReg {
				out.Mem.Base = remap(out.Mem.Base)
			}
			if out.Mem.Index != code.NoReg {
				out.Mem.Index = remap(out.Mem.Index)
			}
		}
		if out.Pred != code.NoReg {
			out.Pred = remap(out.Pred)
		}
		rw.push(out)
		// Nothing executes after RET, and the restores would trail the
		// terminator; skip them.
		if out.Op != code.RET {
			for j := len(restores) - 1; j >= 0; j-- {
				restores[j]()
			}
		}
	}
	fs := p.FS
	fs.Depth = depth
	if fs.Width == 64 && fs.Depth < 16 {
		return nil, fmt.Errorf("lowerDepth: 64-bit code cannot target depth %d; narrow width first", depth)
	}
	if fs.Width == 32 && fs.Depth == 8 && fs.Predication == isa.FullPredication {
		fs.Predication = isa.PartialPredication
		// reverseIfConvert must already have run; verify.
		for i := range rw.out {
			if rw.out[i].Predicated() {
				return nil, fmt.Errorf("lowerDepth: predicated code cannot target depth 8")
			}
		}
	}
	return rw.finish(fs, fmt.Sprintf("+d%d", depth))
}

// writesReg returns the integer register the instruction writes, or NoReg.
func writesReg(in *code.Instr) code.Reg {
	if in.Op.IsFP() {
		return code.NoReg
	}
	switch in.Op {
	case code.ST, code.FST, code.VST, code.CMP, code.TEST, code.JCC, code.JMP, code.RET, code.NOP:
		return code.NoReg
	}
	return in.Dst
}

// srcIsFP reports whether Src1/Src2 are FP-class for the op.
func srcIsFP(op code.Op) bool {
	switch op {
	case code.FST, code.VST, code.FMOV, code.FADD, code.FSUB, code.FMUL,
		code.FDIV, code.FCMP, code.CVTFI, code.VADDF, code.VSUBF, code.VMULF,
		code.VADDI, code.VSUBI, code.VMULI, code.VSPLAT, code.VRSUM:
		return true
	}
	return false
}

// scratchPickerLow picks scratch registers strictly below depth, skipping
// registers the instruction references.
func scratchPickerLow(in *code.Instr, depth int) func() (code.Reg, error) {
	used := map[code.Reg]bool{}
	var regs []code.Reg
	regs = in.IntRegs(regs)
	for _, r := range regs {
		used[r] = true
	}
	next := code.Reg(0)
	return func() (code.Reg, error) {
		for int(next) < depth {
			r := next
			next++
			if !used[r] {
				used[r] = true
				return r, nil
			}
		}
		return 0, fmt.Errorf("no low scratch register below depth %d", depth)
	}
}
