package migrate

import (
	"testing"

	"compisa/internal/code"
	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/workload"
)

// runProg executes a program and returns its checksum.
func runProg(t *testing.T, p *code.Program, r workload.Region) uint64 {
	t.Helper()
	_, m, err := r.Build(p.FS.Width)
	if err != nil {
		t.Fatal(err)
	}
	// The memory image must match the width the code was COMPILED for,
	// which a width downgrade does not change.
	st := cpu.NewState(m)
	res, err := cpu.Run(p, st, 60_000_000, nil)
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return res.Ret & 0xffffffff
}

// runTranslated builds memory for the SOURCE width (data layout follows the
// compiled binary) and executes the translated program.
func runTranslated(t *testing.T, p *code.Program, r workload.Region, srcWidth int) uint64 {
	t.Helper()
	_, m, err := r.Build(srcWidth)
	if err != nil {
		t.Fatal(err)
	}
	st := cpu.NewState(m)
	res, err := cpu.Run(p, st, 60_000_000, nil)
	if err != nil {
		t.Fatalf("%s: %v\n", p.Name, err)
	}
	return res.Ret & 0xffffffff
}

func compileFor(t *testing.T, r workload.Region, fs isa.FeatureSet) *code.Program {
	t.Helper()
	f, _, err := r.Build(fs.Width)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(f, fs, compiler.Options{})
	if err != nil {
		t.Fatalf("%s for %s: %v", r.Name, fs.ShortName(), err)
	}
	p.Name = r.Name
	return p
}

// sampleRegions picks a representative subset covering every kernel family.
func sampleRegions(t *testing.T) []workload.Region {
	t.Helper()
	want := map[string]bool{
		"astar.0": true, "bzip2.3": true, "gobmk.0": true, "hmmer.0": true,
		"lbm.3": true, "mcf.0": true, "milc.3": true, "sjeng.6": true,
	}
	var out []workload.Region
	for _, r := range workload.Regions() {
		if want[r.Name] {
			out = append(out, r)
		}
	}
	return out
}

func TestUpgradeIsFree(t *testing.T) {
	r := sampleRegions(t)[0]
	p := compileFor(t, r, isa.MicroX86Min)
	q, err := Translate(p, isa.Superset)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Error("upgrade migration must return the program unchanged")
	}
}

func TestDowngradePredication(t *testing.T) {
	src := isa.MustNew(isa.MicroX86, 32, 32, isa.FullPredication)
	dst := isa.MustNew(isa.MicroX86, 32, 32, isa.PartialPredication)
	for _, r := range sampleRegions(t) {
		p := compileFor(t, r, src)
		want := runProg(t, p, r)
		q, err := Translate(p, dst)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if got := runTranslated(t, q, r, 32); got != want {
			t.Errorf("%s: predication downgrade checksum %#x want %#x", r.Name, got, want)
		}
		for i := range q.Instrs {
			if q.Instrs[i].Predicated() {
				t.Fatalf("%s: predicated instruction survived downgrade", r.Name)
			}
		}
	}
}

func TestDowngradeComplexity(t *testing.T) {
	src := isa.MustNew(isa.FullX86, 64, 16, isa.PartialPredication)
	dst := isa.MustNew(isa.MicroX86, 64, 16, isa.PartialPredication)
	for _, r := range sampleRegions(t) {
		p := compileFor(t, r, src)
		if programUsesSIMD(p) {
			continue // scheduler runs the scalar binary instead
		}
		want := runProg(t, p, r)
		q, err := Translate(p, dst)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if got := runTranslated(t, q, r, 64); got != want {
			t.Errorf("%s: complexity downgrade checksum %#x want %#x", r.Name, got, want)
		}
		for i := range q.Instrs {
			if q.Instrs[i].MemSrcALU() {
				t.Fatalf("%s: memory-operand ALU survived downgrade", r.Name)
			}
		}
	}
}

func TestDowngradeDepth(t *testing.T) {
	src := isa.MustNew(isa.MicroX86, 32, 64, isa.PartialPredication)
	for _, depth := range []int{32, 16, 8} {
		dst := isa.MustNew(isa.MicroX86, 32, depth, isa.PartialPredication)
		for _, r := range sampleRegions(t) {
			p := compileFor(t, r, src)
			want := runProg(t, p, r)
			q, err := Translate(p, dst)
			if err != nil {
				t.Fatalf("%s -> depth %d: %v", r.Name, depth, err)
			}
			if got := runTranslated(t, q, r, 32); got != want {
				t.Errorf("%s: depth-%d downgrade checksum %#x want %#x", r.Name, depth, got, want)
			}
		}
	}
}

func TestDowngradeWidth(t *testing.T) {
	src := isa.MustNew(isa.MicroX86, 64, 32, isa.PartialPredication)
	dst := isa.MustNew(isa.MicroX86, 32, 32, isa.PartialPredication)
	for _, r := range sampleRegions(t) {
		p := compileFor(t, r, src)
		want := runProg(t, p, r)
		q, err := Translate(p, dst)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if got := runTranslated(t, q, r, 64); got != want {
			t.Errorf("%s: width downgrade checksum %#x want %#x", r.Name, got, want)
		}
	}
}

func TestDowngradeEverything(t *testing.T) {
	// Superset code down to the minimal feature set: every translation
	// pass composes.
	src := isa.MustNew(isa.MicroX86, 64, 64, isa.FullPredication)
	dst := isa.MicroX86Min
	for _, r := range sampleRegions(t) {
		p := compileFor(t, r, src)
		want := runProg(t, p, r)
		q, err := Translate(p, dst)
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if got := runTranslated(t, q, r, 64); got != want {
			t.Errorf("%s: full downgrade checksum %#x want %#x", r.Name, got, want)
		}
	}
}

func TestSIMDDowngradeRefused(t *testing.T) {
	var vec workload.Region
	for _, r := range workload.Regions() {
		if r.Name == "lbm.0" {
			vec = r
		}
	}
	p := compileFor(t, vec, isa.X8664)
	if !programUsesSIMD(p) {
		t.Fatal("lbm.0 on x86-64 should contain SSE code")
	}
	if _, err := Translate(p, isa.X86izedAlpha); err == nil {
		t.Fatal("SIMD downgrade must be refused (run the scalar binary)")
	}
}

func TestDowngradeAddsInstructions(t *testing.T) {
	src := isa.MustNew(isa.MicroX86, 32, 64, isa.PartialPredication)
	dst := isa.MustNew(isa.MicroX86, 32, 8, isa.PartialPredication)
	var reg workload.Region
	for _, r := range workload.Regions() {
		if r.Name == "hmmer.0" {
			reg = r
		}
	}
	p := compileFor(t, reg, src)
	q, err := Translate(p, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Instrs) <= len(p.Instrs) {
		t.Errorf("deep depth downgrade must add emulation code: %d vs %d", len(q.Instrs), len(p.Instrs))
	}
}
