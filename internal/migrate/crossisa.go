package migrate

import (
	"compisa/internal/code"
	"compisa/internal/isa"
)

// Cross-ISA migration cost. Migrations between composite feature sets share
// one encoding, so their cost is the downgrade-translation overhead this
// package's rewriters measure directly. Migrations between *vendor
// encodings* (x86 <-> alpha64) are different in kind: the destination core
// cannot fetch the source encoding at all, so the runtime must binary-
// translate the region's code image and transform the architectural
// register state. VendorISA.CrossISA records *that* this cliff exists; the
// model here prices it from measured quantities — the program's code size
// in its actual target encoding, and the two targets' register-file
// geometries — instead of a bare bool.
//
// Constants are grounded in "A Magnified View into Heterogeneous-ISA Thread
// Migration Performance" (PAPERS.md): end-to-end migration latencies are
// dominated by binary translation (roughly linear in translated code bytes,
// on the order of 10^2 cycles per instruction), with register-state
// transformation contributing microseconds and a fixed runtime handoff
// (stack/page fixup, entry into the translated image) in the tens of
// microseconds. Totals for the suite's regions land in the tens-to-hundreds
// of microseconds the paper reports, not the sub-microsecond cost of a
// same-ISA composite migration.
const (
	// transCyclesPerByte prices rewriting one code byte of the source
	// encoding into the destination encoding (decode, map, re-encode).
	// At x86's measured ~2.7 B/instr this is ~110 cycles/instr; at
	// alpha64's fixed 4 B/word, ~160.
	transCyclesPerByte = 40
	// stateCyclesPerReg prices transforming one architectural register
	// (read, remap to the destination's context layout, write).
	stateCyclesPerReg = 50
	// crossISAFixedCycles is the encoding-independent runtime handoff:
	// ~10 µs at the 3 GHz the timing model assumes.
	crossISAFixedCycles = 30_000
)

// CrossISACost is the one-time latency breakdown (cycles) of migrating a
// thread between cores with different vendor encodings.
type CrossISACost struct {
	// TranslationCycles rewrites the region's code image into the
	// destination encoding; proportional to the measured code size.
	TranslationCycles int64
	// StateCycles transforms the architectural register state; proportional
	// to the union of the two targets' register files.
	StateCycles int64
	// FixedCycles is the runtime entry/exit overhead.
	FixedCycles int64
}

// Total is the end-to-end cross-ISA migration latency in cycles.
func (c CrossISACost) Total() int64 {
	return c.TranslationCycles + c.StateCycles + c.FixedCycles
}

// MigrationCost prices migrating prog from the encoding it was compiled for
// (prog.Target) onto a core fetching the to encoding. Same encoding costs
// nothing beyond the composite downgrade translations; the composite
// feature sets all share the x86 superset encoding, which is what makes
// their migrations cheap in the paper's Figure 14 sense.
func MigrationCost(prog *code.Program, to *isa.Target) CrossISACost {
	from, ok := isa.TargetByName(prog.Target)
	if !ok || to == nil || from.Name == to.Name {
		return CrossISACost{}
	}
	ints := from.IntRegs
	if to.IntRegs > ints {
		ints = to.IntRegs
	}
	fps := from.FPRegs
	if to.FPRegs > fps {
		fps = to.FPRegs
	}
	return CrossISACost{
		TranslationCycles: int64(prog.Size) * transCyclesPerByte,
		StateCycles:       int64(ints+fps) * stateCyclesPerReg,
		FixedCycles:       crossISAFixedCycles,
	}
}
