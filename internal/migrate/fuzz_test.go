package migrate

import (
	"testing"

	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/workload"
)

// TestFuzzTranslateRandomPrograms compiles random regions for feature-rich
// sources and translates them down every viable ladder, checking checksum
// preservation at every rung.
func TestFuzzTranslateRandomPrograms(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	sources := []isa.FeatureSet{
		isa.MustNew(isa.MicroX86, 64, 64, isa.FullPredication),
		isa.MustNew(isa.FullX86, 64, 32, isa.FullPredication),
		isa.MustNew(isa.MicroX86, 32, 64, isa.FullPredication),
	}
	targets := []isa.FeatureSet{
		isa.MicroX86Min,
		isa.MustNew(isa.MicroX86, 32, 16, isa.PartialPredication),
		isa.MustNew(isa.MicroX86, 32, 32, isa.FullPredication),
		isa.MustNew(isa.MicroX86, 64, 16, isa.PartialPredication),
	}
	for seed := 1; seed <= seeds; seed++ {
		r := workload.RandomRegion(uint64(seed))
		for _, src := range sources {
			f, m, err := r.Build(src.Width)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := compiler.Compile(f, src, compiler.Options{})
			if err != nil {
				t.Fatalf("seed %d src %s: %v", seed, src.ShortName(), err)
			}
			prog.Name = r.Name
			res, err := cpu.Run(prog, cpu.NewState(m.Clone()), 10_000_000, nil)
			if err != nil {
				t.Fatalf("seed %d src %s: %v", seed, src.ShortName(), err)
			}
			want := res.Ret & 0xffffffff
			for _, dst := range targets {
				if dst.Width == 64 && src.Width == 32 {
					continue // upgrades are covered elsewhere
				}
				trans, err := Translate(prog, dst)
				if err != nil {
					t.Fatalf("seed %d %s->%s: %v", seed, src.ShortName(), dst.ShortName(), err)
				}
				_, m2, err := r.Build(src.Width)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cpu.Run(trans, cpu.NewState(m2), 30_000_000, nil)
				if err != nil {
					t.Fatalf("seed %d %s->%s: %v", seed, src.ShortName(), dst.ShortName(), err)
				}
				if got.Ret&0xffffffff != want {
					t.Errorf("seed %d %s->%s: checksum %#x want %#x",
						seed, src.ShortName(), dst.ShortName(), got.Ret, want)
				}
			}
		}
	}
}
