package migrate

import (
	"testing"

	"compisa/internal/compiler"
	"compisa/internal/isa"
	"compisa/internal/workload"
)

// TestMigrationCost pins the cross-ISA cost model to its measured inputs:
// zero for same-encoding migrations, translation cycles proportional to the
// program's code size in its actual target encoding, and state cycles
// driven by the union of the two targets' register files.
func TestMigrationCost(t *testing.T) {
	fs := isa.X86izedAlpha
	bench, err := workload.ByName("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Regions[0]
	f, _, err := r.Build(fs.Width)
	if err != nil {
		t.Fatal(err)
	}
	x86Prog, err := compiler.Compile(f, fs, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	alphaProg, err := compiler.Compile(f, fs, compiler.Options{Target: "alpha64"})
	if err != nil {
		t.Fatal(err)
	}

	// Same encoding: the composite-overlap case, no cross-ISA cliff.
	if c := MigrationCost(x86Prog, &isa.X86Target); c.Total() != 0 {
		t.Errorf("x86 -> x86 must be free, got %d cycles", c.Total())
	}
	if c := MigrationCost(alphaProg, &isa.Alpha64Target); c.Total() != 0 {
		t.Errorf("alpha64 -> alpha64 must be free, got %d cycles", c.Total())
	}

	toAlpha := MigrationCost(x86Prog, &isa.Alpha64Target)
	toX86 := MigrationCost(alphaProg, &isa.X86Target)
	for name, c := range map[string]CrossISACost{"x86->alpha64": toAlpha, "alpha64->x86": toX86} {
		if c.TranslationCycles <= 0 || c.StateCycles <= 0 || c.FixedCycles <= 0 {
			t.Errorf("%s: all components must be positive: %+v", name, c)
		}
	}
	// Translation is priced from the MEASURED code size of the source
	// encoding: the alpha64 image of the same region is larger (fixed
	// 4-byte words, ld-imm splitting), so translating out of it costs more.
	if toX86.TranslationCycles <= toAlpha.TranslationCycles {
		t.Errorf("alpha64 image (%d B) must out-cost the x86 image (%d B): %d vs %d cycles",
			alphaProg.Size, x86Prog.Size, toX86.TranslationCycles, toAlpha.TranslationCycles)
	}
	if want := int64(x86Prog.Size) * transCyclesPerByte; toAlpha.TranslationCycles != want {
		t.Errorf("translation cycles %d, want measured-size-derived %d", toAlpha.TranslationCycles, want)
	}
	// State transformation covers the union of the register files: x86's 64
	// integer + 16 FP against alpha64's 32 + 16 -> 80 registers either way.
	if want := int64(64+16) * stateCyclesPerReg; toAlpha.StateCycles != want || toX86.StateCycles != want {
		t.Errorf("state cycles (%d, %d), want geometry-derived %d",
			toAlpha.StateCycles, toX86.StateCycles, want)
	}
	// Magnified View sanity band: a real region's cross-ISA migration is
	// tens-to-hundreds of microseconds (~3 GHz), orders beyond a same-ISA
	// composite switch, but nowhere near a process restart.
	for name, c := range map[string]CrossISACost{"x86->alpha64": toAlpha, "alpha64->x86": toX86} {
		if tot := c.Total(); tot < 50_000 || tot > 50_000_000 {
			t.Errorf("%s: total %d cycles outside the plausible migration band", name, tot)
		}
	}
}
