package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightCall is one in-progress computation; duplicate callers wait on done
// instead of recomputing.
type flightCall[V any] struct {
	done    chan struct{}
	joiners atomic.Int32 // callers beyond the leader (tests sequence on this)
	v       V
	err     error
}

// flightGroup collapses concurrent computations for one key onto a single
// execution — the request-coalescing half of the serving layer. It differs
// from the profile tier's singleflight (internal/eval) in two ways the
// service needs:
//
//   - the computation runs in its own goroutine, detached from the caller
//     that happened to arrive first, so one client hanging up never fails
//     the joiners riding its evaluation;
//   - each waiter honors its own context, so per-request deadlines expire
//     individually while the shared work continues for whoever remains.
type flightGroup[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

// Do returns fn's result for key, starting fn only if no computation for
// key is in flight. joined reports whether this caller coalesced onto an
// execution started by an earlier caller. When ctx expires before the
// computation finishes, Do returns ctx.Err() but the computation keeps
// running for other waiters (fn must manage its own lifetime).
func (g *flightGroup[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, joined bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall[V]{}
	}
	c, ok := g.calls[key]
	if ok {
		c.joiners.Add(1)
	} else {
		c = &flightCall[V]{done: make(chan struct{})}
		g.calls[key] = c
		go func() {
			c.v, c.err = fn()
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
	}
	g.mu.Unlock()
	select {
	case <-c.done:
		return c.v, ok, c.err
	case <-ctx.Done():
		return v, ok, ctx.Err()
	}
}

// waiting reports how many callers have coalesced onto key's in-flight
// call (0 when none is registered). Tests use it to release a blocked
// computation only once every expected joiner is riding it.
func (g *flightGroup[V]) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return int(c.joiners.Load())
	}
	return 0
}
