package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"compisa/internal/eval"
	"compisa/internal/fault"
	"compisa/internal/par"
)

// job is one asynchronous /explore sweep. The submitting request returns
// immediately with the job id; clients poll GET /explore/{id}. Jobs run on
// the server's root context, so Drain cancels them — their clients observe
// the failure on the next poll and resubmit elsewhere.
type job struct {
	id        string
	total     int
	completed atomic.Int64

	mu      sync.Mutex
	done    bool
	err     error
	results []PointResult
}

func (j *job) response(includeResults bool) JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	resp := JobResponse{
		ID:        j.id,
		Status:    "running",
		Total:     j.total,
		Completed: int(j.completed.Load()),
	}
	if j.done {
		resp.Status = "done"
		if j.err != nil {
			resp.Status = "failed"
			resp.Error = j.err.Error()
		}
		for _, r := range j.results {
			if r.Error != "" {
				resp.Errors++
			}
		}
		if includeResults {
			resp.Results = j.results
		}
	}
	return resp
}

func (s *Server) handleExploreStart(w http.ResponseWriter, r *http.Request) {
	if !s.serveBegin(w) {
		return
	}
	defer s.end()
	var req ExploreRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	isas := req.ISAs
	if len(isas) == 0 {
		isas = eval.ChoiceKeys()
	}
	points := make([]PointRequest, 0, len(isas)*max(len(req.Configs), 1))
	for _, isa := range isas {
		if _, ok := eval.ChoiceByKey(isa); !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown ISA key %q", isa))
			return
		}
		if len(req.Configs) == 0 {
			points = append(points, PointRequest{ISA: isa})
			continue
		}
		for i := range req.Configs {
			cfg := req.Configs[i]
			points = append(points, PointRequest{ISA: isa, Config: &cfg})
		}
	}

	s.mu.Lock()
	s.seq++
	j := &job{id: fmt.Sprintf("job-%d", s.seq), total: len(points)}
	s.jobs[j.id] = j
	s.mu.Unlock()

	go func() {
		results := make([]PointResult, len(points))
		_, errs := par.MapAll(s.root, len(points), 0, func(i int) (struct{}, error) {
			results[i] = s.evalOne(s.root, points[i])
			j.completed.Add(1)
			return struct{}{}, nil
		})
		for i, err := range errs {
			if err != nil && results[i].ISA == "" {
				results[i] = PointResult{
					ISA: points[i].ISA, Error: err.Error(), Status: fault.HTTPStatus(err),
				}
			}
		}
		j.mu.Lock()
		j.done = true
		j.results = results
		for _, err := range errs {
			if err != nil {
				j.err = err
				break
			}
		}
		if j.err == nil && s.root.Err() != nil {
			j.err = fmt.Errorf("job canceled: %w", s.root.Err())
		}
		j.mu.Unlock()
	}()

	writeJSON(w, http.StatusAccepted, j.response(false))
}

func (s *Server) handleExplorePoll(w http.ResponseWriter, r *http.Request) {
	s.stats.Requests.Inc()
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j.response(true))
}
