package serve

import (
	"errors"
	"sync"
	"time"

	"compisa/internal/eval"
	"compisa/internal/metrics"
)

// ErrStoreOpen is returned (and counted, never surfaced to clients) for a
// write skipped because the store circuit is open: the evaluation stays
// correct in memory, only its durability is deferred.
var ErrStoreOpen = errors.New("serve: store circuit open; write skipped")

// BreakerState is the store circuit's state.
type BreakerState string

const (
	// BreakerClosed: the store is healthy; writes flow through.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the store failed repeatedly; writes are skipped
	// (memory-only serving) until the next probe window.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: one probe write is in flight; its outcome closes
	// or re-opens the circuit.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerConfig tunes a StoreBreaker. The zero value selects the
// documented defaults.
type BreakerConfig struct {
	// Threshold is the number of consecutive persist failures that opens
	// the circuit (default 5).
	Threshold int
	// OpenFor is how long an open circuit skips writes before allowing a
	// half-open probe (default 15s).
	OpenFor time.Duration
	// Log, if set, receives state transitions.
	Log func(format string, args ...any)

	// now is the test seam for time (default time.Now).
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 15 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// BreakerStats counts the circuit's activity (exposed on /metrics).
type BreakerStats struct {
	Trips    metrics.Counter // closed/half-open → open transitions
	Skipped  metrics.Counter // writes dropped while open
	Probes   metrics.Counter // half-open probe writes attempted
	Failures metrics.Counter // persist attempts that failed
}

// StoreBreaker wraps an eval.Persister with a circuit breaker, so a dying
// durable tier degrades the service to memory-only instead of taxing every
// evaluation with a failing write. It is the production wiring between
// eval.DB.Persist and the store:
//
//	closed → (Threshold consecutive failures) → open
//	open   → (OpenFor elapsed) → half-open: one probe write
//	half-open → probe ok → closed; probe fails → open again
//
// The degraded state is surfaced on /healthz ("degraded") and /metrics
// (compisa_serve_store_degraded) via Server.Config.Store.
type StoreBreaker struct {
	p   eval.Persister
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time

	stats BreakerStats
}

// NewStoreBreaker wraps a persister.
func NewStoreBreaker(p eval.Persister, cfg BreakerConfig) *StoreBreaker {
	return &StoreBreaker{p: p, cfg: cfg.withDefaults(), state: BreakerClosed}
}

var _ eval.Persister = (*StoreBreaker)(nil)

func (b *StoreBreaker) logf(format string, args ...any) {
	if b.cfg.Log != nil {
		b.cfg.Log(format, args...)
	}
}

// PutCandidate forwards the write unless the circuit is open; while open,
// one write per OpenFor window goes through as the half-open probe.
func (b *StoreBreaker) PutCandidate(key string, c *eval.Candidate) error {
	probe, skip := b.admitWrite()
	if skip {
		b.stats.Skipped.Inc()
		return ErrStoreOpen
	}
	err := b.p.PutCandidate(key, c)
	b.record(probe, err)
	return err
}

// admitWrite decides this write's fate: pass, probe, or skip.
func (b *StoreBreaker) admitWrite() (probe, skip bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return false, false
	case BreakerHalfOpen:
		// One probe at a time; everything else stays skipped.
		return false, true
	default: // BreakerOpen
		if b.cfg.now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false, true
		}
		b.state = BreakerHalfOpen
		b.stats.Probes.Inc()
		b.logf("serve: store circuit half-open, probing")
		return true, false
	}
}

// record folds a write outcome into the circuit state.
func (b *StoreBreaker) record(probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		if b.state != BreakerClosed {
			b.logf("serve: store circuit closed (store recovered)")
		}
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.stats.Failures.Inc()
	if probe {
		// The probe failed: back to fully open for another window.
		b.state = BreakerOpen
		b.openedAt = b.cfg.now()
		b.stats.Trips.Inc()
		b.logf("serve: store probe failed, circuit open again: %v", err)
		return
	}
	b.fails++
	if b.state == BreakerClosed && b.fails >= b.cfg.Threshold {
		b.state = BreakerOpen
		b.openedAt = b.cfg.now()
		b.stats.Trips.Inc()
		b.logf("serve: store circuit open after %d consecutive failures (serving memory-only): %v", b.fails, err)
	}
}

// State reports the circuit's current state.
func (b *StoreBreaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Degraded reports whether the durable tier is currently bypassed.
func (b *StoreBreaker) Degraded() bool { return b.State() != BreakerClosed }

// Stats returns the circuit's counters (for /metrics and tests).
func (b *StoreBreaker) Stats() *BreakerStats { return &b.stats }
