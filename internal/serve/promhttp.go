package serve

import (
	"net/http"
	"time"

	"compisa/internal/metrics"
)

// handleMetrics renders the server's and (when wired) the evaluation
// pipeline's instrumentation in the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.stats.Requests.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	pw := metrics.NewPromWriter(w)

	pw.Gauge("compisa_serve_uptime_seconds", "Seconds since the server started.",
		time.Since(s.start).Seconds())
	pw.Gauge("compisa_serve_inflight_requests", "HTTP requests currently being served.",
		float64(s.InFlight()))
	draining := 0.0
	if s.Draining() {
		draining = 1
	}
	pw.Gauge("compisa_serve_draining", "1 while the server is draining.", draining)

	pw.Counter("compisa_serve_requests_total", "HTTP requests accepted.", s.stats.Requests.Load())
	pw.Counter("compisa_serve_points_total", "Design points requested.", s.stats.Points.Load())
	pw.Counter("compisa_serve_evaluations_total", "Evaluations started (coalescing leaders).",
		s.stats.Evaluations.Load())
	pw.Counter("compisa_serve_coalesced_total", "Points that joined an in-flight evaluation.",
		s.stats.Coalesced.Load())
	pw.Counter("compisa_serve_cache_hits_total", "Points already evaluated by an earlier request.",
		s.stats.CacheHits.Load())
	pw.Counter("compisa_serve_rejected_total", "Admission rejections (HTTP 429).", s.stats.Rejected.Load())
	pw.Counter("compisa_serve_timeouts_total", "Caller deadlines expired (HTTP 504).", s.stats.Timeouts.Load())
	pw.Counter("compisa_serve_faults_total", "Evaluation errors surfaced to clients.", s.stats.Faults.Load())
	pw.Histogram("compisa_serve_point_duration_seconds", "Per-point serving latency.",
		s.stats.Latency.Snapshot())

	if b := s.cfg.Store; b != nil {
		degraded := 0.0
		if b.Degraded() {
			degraded = 1
		}
		pw.Gauge("compisa_serve_store_degraded",
			"1 while the store circuit is not closed (serving memory-only).", degraded)
		bs := b.Stats()
		pw.Counter("compisa_serve_store_trips_total", "Store circuit open transitions.", bs.Trips.Load())
		pw.Counter("compisa_serve_store_skipped_writes_total", "Writes dropped while the circuit was open.",
			bs.Skipped.Load())
		pw.Counter("compisa_serve_store_probes_total", "Half-open probe writes attempted.", bs.Probes.Load())
		pw.Counter("compisa_serve_store_failures_total", "Store writes that failed.", bs.Failures.Load())
	}
	if eng := s.cfg.JIT; eng != nil {
		js := eng.Stats()
		pw.Counter("compisa_serve_jit_regions_total", "Programs compiled to native code.", js.Regions)
		pw.Counter("compisa_serve_jit_runs_total", "Executions served natively.", js.Runs)
		pw.Counter("compisa_serve_jit_deopts_total", "Instructions bounced to the interpreter mid-run.",
			js.Deopts)
		pw.Counter("compisa_serve_jit_bailouts_total", "Executions declined entirely (interpreter ran).",
			js.Bailouts)
		pw.Counter("compisa_serve_jit_cache_hits_total", "Native runs served from an already-compiled module.",
			js.CacheHits)
		pw.Counter("compisa_serve_jit_evictions_total", "Modules evicted from the code cache.", js.Evictions)
	}
	if es := s.cfg.EvalStats; es != nil {
		pw.Counter("compisa_eval_stage_total", "Pipeline stage executions.", es.Compiles.Load(), "stage", "compile")
		pw.Counter("compisa_eval_stage_total", "Pipeline stage executions.", es.Verifies.Load(), "stage", "verify")
		pw.Counter("compisa_eval_stage_total", "Pipeline stage executions.", es.Execs.Load(), "stage", "exec")
		pw.Counter("compisa_eval_stage_total", "Pipeline stage executions.", es.ModelEvals.Load(), "stage", "model")
		pw.Counter("compisa_eval_cache_total", "Cache tier outcomes.", es.ProfileHits.Load(), "tier", "profile", "outcome", "hit")
		pw.Counter("compisa_eval_cache_total", "Cache tier outcomes.", es.ProfileMisses.Load(), "tier", "profile", "outcome", "miss")
		pw.Counter("compisa_eval_cache_total", "Cache tier outcomes.", es.CandidateHits.Load(), "tier", "candidate", "outcome", "hit")
		pw.Counter("compisa_eval_cache_total", "Cache tier outcomes.", es.CandidateMisses.Load(), "tier", "candidate", "outcome", "miss")
		pw.Counter("compisa_eval_retries_total", "Faulted stages retried.", es.Retries.Load())
		pw.Counter("compisa_eval_quarantines_total", "(region, ISA) pairs quarantined.", es.Quarantines.Load())
		pw.Counter("compisa_eval_degraded_regions_total", "Regions scored at the Policy penalties.",
			es.DegradedRegions.Load())
		pw.Counter("compisa_eval_persisted_total", "Candidates written through to the durable store.",
			es.Persisted.Load())
		pw.Counter("compisa_eval_persist_errors_total", "Candidate write-throughs that failed.",
			es.PersistErrors.Load())
		pw.Histogram("compisa_eval_stage_duration_seconds", "Stage timings.",
			es.CompileTime.Snapshot(), "stage", "compile")
		pw.Histogram("compisa_eval_stage_duration_seconds", "Stage timings.",
			es.VerifyTime.Snapshot(), "stage", "verify")
		pw.Histogram("compisa_eval_stage_duration_seconds", "Stage timings.",
			es.ExecTime.Snapshot(), "stage", "exec")
		pw.Histogram("compisa_eval_stage_duration_seconds", "Stage timings.",
			es.ModelTime.Snapshot(), "stage", "model")
	}
	if err := pw.Err(); err != nil {
		s.logf("serve: metrics write: %v", err)
	}
}
