package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"compisa/internal/eval"
)

// flakyPersister fails while down, tracking every attempted write.
type flakyPersister struct {
	mu    sync.Mutex
	down  bool
	puts  int
	calls []string
}

func (p *flakyPersister) PutCandidate(key string, c *eval.Candidate) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls = append(p.calls, key)
	if p.down {
		return errors.New("disk on fire")
	}
	p.puts++
	return nil
}

func (p *flakyPersister) setDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
}

func (p *flakyPersister) attempts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.calls)
}

// TestBreakerTripAndRecover walks the full state machine: Threshold
// consecutive failures open the circuit, writes are skipped while open, the
// post-window probe reaches the persister, and a successful probe closes
// the circuit again.
func TestBreakerTripAndRecover(t *testing.T) {
	p := &flakyPersister{down: true}
	clock := time.Unix(1000, 0)
	b := NewStoreBreaker(p, BreakerConfig{
		Threshold: 3,
		OpenFor:   10 * time.Second,
		now:       func() time.Time { return clock },
	})
	cand := &eval.Candidate{}

	for i := 0; i < 3; i++ {
		if b.State() != BreakerClosed {
			t.Fatalf("state before failure %d = %s, want closed", i, b.State())
		}
		if err := b.PutCandidate(fmt.Sprintf("k%d", i), cand); err == nil {
			t.Fatal("expected persist failure")
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after %d failures = %s, want open", 3, b.State())
	}
	if !b.Degraded() {
		t.Fatal("open circuit should report degraded")
	}

	// While open (window not elapsed) writes are skipped without touching
	// the persister.
	before := p.attempts()
	if err := b.PutCandidate("skipped", cand); !errors.Is(err, ErrStoreOpen) {
		t.Fatalf("open-circuit write: got %v, want ErrStoreOpen", err)
	}
	if p.attempts() != before {
		t.Fatal("open-circuit write reached the persister")
	}
	if got := b.Stats().Skipped.Load(); got != 1 {
		t.Fatalf("Skipped = %d, want 1", got)
	}

	// Window elapses but the store is still down: the probe goes through,
	// fails, and re-opens the circuit for another full window.
	clock = clock.Add(11 * time.Second)
	if err := b.PutCandidate("probe1", cand); err == nil {
		t.Fatal("probe against a down store should fail")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", b.State())
	}
	if err := b.PutCandidate("still-skipped", cand); !errors.Is(err, ErrStoreOpen) {
		t.Fatalf("post-failed-probe write: got %v, want ErrStoreOpen", err)
	}

	// Store recovers; next window's probe succeeds and closes the circuit.
	p.setDown(false)
	clock = clock.Add(11 * time.Second)
	if err := b.PutCandidate("probe2", cand); err != nil {
		t.Fatalf("recovery probe: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", b.State())
	}
	if b.Degraded() {
		t.Fatal("closed circuit should not report degraded")
	}
	if err := b.PutCandidate("normal", cand); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
	if got := b.Stats().Trips.Load(); got != 2 {
		t.Fatalf("Trips = %d, want 2 (initial trip + failed probe)", got)
	}
	if got := b.Stats().Probes.Load(); got != 2 {
		t.Fatalf("Probes = %d, want 2", got)
	}
}

// TestBreakerIntermittentFailures: sub-threshold failure runs never open
// the circuit — a success resets the consecutive-failure count.
func TestBreakerIntermittentFailures(t *testing.T) {
	p := &flakyPersister{}
	b := NewStoreBreaker(p, BreakerConfig{Threshold: 3})
	cand := &eval.Candidate{}
	for round := 0; round < 5; round++ {
		p.setDown(true)
		b.PutCandidate("a", cand)
		b.PutCandidate("b", cand)
		p.setDown(false)
		if err := b.PutCandidate("c", cand); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if b.State() != BreakerClosed {
			t.Fatalf("round %d: state = %s, want closed", round, b.State())
		}
	}
	if got := b.Stats().Trips.Load(); got != 0 {
		t.Fatalf("Trips = %d, want 0", got)
	}
}

// TestBreakerConcurrent hammers a breaker from many goroutines across
// up/down flips; the invariant is simply no panic/race and a sane final
// state (the race detector does the heavy lifting).
func TestBreakerConcurrent(t *testing.T) {
	p := &flakyPersister{}
	b := NewStoreBreaker(p, BreakerConfig{Threshold: 2, OpenFor: time.Millisecond})
	cand := &eval.Candidate{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if i%50 == 0 {
					p.setDown(i%100 == 0)
				}
				b.PutCandidate(fmt.Sprintf("w%d-%d", w, i), cand)
			}
		}(w)
	}
	wg.Wait()
	p.setDown(false)
	// Drive probes until the circuit closes again.
	waitFor(t, "circuit to close", func() bool {
		b.PutCandidate("drain", cand)
		return b.State() == BreakerClosed
	})
}

// TestServeWithStoreDown is the acceptance check for degraded-mode serving:
// with the durable tier hard-down, evaluation requests keep answering 200
// (never 5xx), /healthz reports status "degraded" with the circuit state,
// and /metrics exposes the degraded gauge.
func TestServeWithStoreDown(t *testing.T) {
	p := &flakyPersister{down: true}
	b := NewStoreBreaker(p, BreakerConfig{Threshold: 1, OpenFor: time.Hour})
	eng := &fakeEngine{}
	s := New(eng, Config{Workers: 2, Store: b})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Trip the circuit the way production would: a persist failure.
	b.PutCandidate("boom", &eval.Candidate{})
	if b.State() != BreakerOpen {
		t.Fatalf("state = %s, want open", b.State())
	}

	for i, key := range isaKeys(t, 3) {
		resp, body := postJSON(t, ts.URL+"/evaluate", EvaluateRequest{ISA: key})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate %d with store down: status %d, body %s", i, resp.StatusCode, body)
		}
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("degraded /healthz status = %d, want 200", hr.StatusCode)
	}
	if h.Status != "degraded" || h.Store != string(BreakerOpen) {
		t.Fatalf("healthz = %+v, want status degraded, store open", h)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mb), "compisa_serve_store_degraded 1") {
		t.Fatalf("metrics missing degraded gauge:\n%s", mb)
	}
	if !strings.Contains(string(mb), "compisa_serve_store_trips_total 1") {
		t.Fatalf("metrics missing trips counter:\n%s", mb)
	}

	// And once healthy, /healthz drops back to ok with the circuit closed.
	p.setDown(false)
	bb := NewStoreBreaker(p, BreakerConfig{})
	s2 := New(eng, Config{Workers: 2, Store: bb})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	hr2, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h2 HealthResponse
	json.NewDecoder(hr2.Body).Decode(&h2)
	hr2.Body.Close()
	if h2.Status != "ok" || h2.Store != string(BreakerClosed) {
		t.Fatalf("healthy healthz = %+v, want status ok, store closed", h2)
	}
}
