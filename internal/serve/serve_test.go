package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"compisa/internal/eval"
	"compisa/internal/fault"
)

// fakeEngine is a controllable Engine: it can block evaluations until
// released (for coalescing/drain/admission sequencing) and fail them with
// a chosen error (for status mapping).
type fakeEngine struct {
	mu      sync.Mutex
	evals   int
	entered chan struct{} // when non-nil, receives one token per Evaluate entry
	release chan struct{} // when non-nil, Evaluate blocks on it (or ctx)
	err     error
}

func (f *fakeEngine) Evals() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.evals
}

func (f *fakeEngine) ReferenceMetrics(ctx context.Context) ([]eval.Metric, error) {
	return []eval.Metric{{Cycles: 100, Energy: 1}}, nil
}

func (f *fakeEngine) Evaluate(ctx context.Context, dp eval.DesignPoint, ref []eval.Metric) (*eval.Candidate, error) {
	f.mu.Lock()
	f.evals++
	f.mu.Unlock()
	if f.entered != nil {
		f.entered <- struct{}{}
	}
	if f.release != nil {
		select {
		case <-f.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if f.err != nil {
		return nil, f.err
	}
	return &eval.Candidate{
		DP: dp, AreaMM2: 10, PeakW: 5,
		Speedup: []float64{1.25}, NormEDP: []float64{0.8}, Degraded: []bool{false},
	}, nil
}

func isaKeys(t *testing.T, n int) []string {
	t.Helper()
	keys := eval.ChoiceKeys()
	if len(keys) < n {
		t.Fatalf("need %d ISA keys, have %d", n, len(keys))
	}
	return keys[:n]
}

// waitFor polls cond to true within a deadline generous enough for -race.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestCoalescing: N concurrent requests for one design point collapse onto
// a single engine evaluation; every caller gets the shared result.
func TestCoalescing(t *testing.T) {
	eng := &fakeEngine{release: make(chan struct{})}
	s := New(eng, Config{Workers: 4})
	key := isaKeys(t, 1)[0]
	dp, err := resolvePoint(PointRequest{ISA: key})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	results := make([]PointResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.evalOne(context.Background(), PointRequest{ISA: key})
		}(i)
	}
	// Release only once the leader is inside the engine and all other
	// callers have coalesced onto its flight.
	waitFor(t, "all callers riding one evaluation", func() bool {
		return eng.Evals() == 1 && s.flight.waiting(dp.CacheKey()) == n-1
	})
	close(eng.release)
	wg.Wait()

	if got := eng.Evals(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d evaluations, want 1", n, got)
	}
	coalesced := 0
	for i, r := range results {
		if r.Error != "" {
			t.Errorf("request %d failed: %s", i, r.Error)
		}
		if r.MeanSpeedup != 1.25 {
			t.Errorf("request %d speedup = %v, want 1.25", i, r.MeanSpeedup)
		}
		if r.Coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Errorf("%d results marked coalesced, want %d", coalesced, n-1)
	}
	if got := s.stats.Evaluations.Load(); got != 1 {
		t.Errorf("stats.Evaluations = %d, want 1", got)
	}
	if got := s.stats.Coalesced.Load(); got != n-1 {
		t.Errorf("stats.Coalesced = %d, want %d", got, n-1)
	}

	// A later identical request is reported as served-from-cache.
	r := s.evalOne(context.Background(), PointRequest{ISA: key})
	if !r.Cached {
		t.Error("repeat request not marked cached")
	}
	if got := s.stats.CacheHits.Load(); got != 1 {
		t.Errorf("stats.CacheHits = %d, want 1", got)
	}
}

// TestDeadlineExpiry: a caller deadline expiring mid-evaluation answers 504
// with a Retry-After hint, and the detached evaluation goroutine winds down
// at the server timeout instead of leaking.
func TestDeadlineExpiry(t *testing.T) {
	eng := &fakeEngine{release: make(chan struct{})} // never released: only ctx ends it
	s := New(eng, Config{Workers: 2, Timeout: 150 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	base := runtime.NumGoroutine()

	resp, body := postJSON(t, ts.URL+"/evaluate", EvaluateRequest{ISA: isaKeys(t, 1)[0], DeadlineMS: 40})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("504 carries no Retry-After header")
	}
	var er EvaluateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Results) != 1 || er.Results[0].Status != http.StatusGatewayTimeout {
		t.Errorf("per-point status = %+v, want one 504", er.Results)
	}
	if got := s.stats.Timeouts.Load(); got != 1 {
		t.Errorf("stats.Timeouts = %d, want 1", got)
	}

	// The evaluation was detached from the dead caller; it must end at the
	// server timeout, leaving no goroutine behind (keep-alive connections
	// are the client's, not the evaluation's — shed them before counting).
	waitFor(t, "evaluation goroutines to wind down", func() bool {
		if s.flight.waiting("") != 0 || len(s.sem) != 0 {
			return false
		}
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		return runtime.NumGoroutine() <= base+2
	})
}

// TestDrain: draining answers new work with 503 + Retry-After while the
// in-flight request runs to completion, and Drain returns once it has.
func TestDrain(t *testing.T) {
	eng := &fakeEngine{entered: make(chan struct{}, 1), release: make(chan struct{})}
	s := New(eng, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	key := isaKeys(t, 1)[0]

	type reply struct {
		code int
		body []byte
	}
	inflight := make(chan reply, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/evaluate", EvaluateRequest{ISA: key})
		inflight <- reply{resp.StatusCode, body}
	}()
	<-eng.entered

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, "server to start draining", s.Draining)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining healthz carries no Retry-After")
	}
	if resp, _ := postJSON(t, ts.URL+"/evaluate", EvaluateRequest{ISA: key}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining evaluate = %d, want 503", resp.StatusCode)
	}

	close(eng.release)
	got := <-inflight
	if got.code != http.StatusOK {
		t.Errorf("in-flight request finished %d, want 200; body %s", got.code, got.body)
	}
	if err := <-drained; err != nil {
		t.Errorf("Drain: %v", err)
	}
}

// TestAdmission: with one worker and a queue of one, a third distinct
// request is rejected with 429 instead of waiting unboundedly.
func TestAdmission(t *testing.T) {
	eng := &fakeEngine{entered: make(chan struct{}, 3), release: make(chan struct{})}
	s := New(eng, Config{Workers: 1, Queue: 1})
	keys := isaKeys(t, 3)

	results := make([]PointResult, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = s.evalOne(context.Background(), PointRequest{ISA: keys[0]})
	}()
	<-eng.entered // first request holds the worker slot
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[1] = s.evalOne(context.Background(), PointRequest{ISA: keys[1]})
	}()
	waitFor(t, "second request to occupy the queue", func() bool { return len(s.queued) == 2 })

	r := s.evalOne(context.Background(), PointRequest{ISA: keys[2]})
	if r.Status != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d (%s), want 429", r.Status, r.Error)
	}
	if r.RetryAfterS <= 0 {
		t.Error("429 carries no retry_after_s hint")
	}
	if got := s.stats.Rejected.Load(); got != 1 {
		t.Errorf("stats.Rejected = %d, want 1", got)
	}

	close(eng.release)
	wg.Wait()
	for i, r := range results {
		if r.Error != "" {
			t.Errorf("admitted request %d failed: %s", i, r.Error)
		}
	}
}

// TestStatusMapping: evaluation failures surface as the taxonomy's HTTP
// statuses on single-point requests.
func TestStatusMapping(t *testing.T) {
	key := eval.ChoiceKeys()[0]
	cases := []struct {
		name       string
		isa        string
		err        error
		wantStatus int
		wantRetry  bool
	}{
		{"transient fault -> 503", key,
			&fault.Error{Stage: fault.StageExec, Region: "r", ISA: key, Transient: true, Err: errors.New("boom")},
			http.StatusServiceUnavailable, true},
		{"deterministic verify fault -> 422", key,
			&fault.Error{Stage: fault.StageVerify, Region: "r", ISA: key, Err: errors.New("illegal opcode")},
			http.StatusUnprocessableEntity, false},
		{"deterministic model fault -> 500", key,
			&fault.Error{Stage: fault.StageModel, Region: "r", ISA: key, Err: errors.New("nan")},
			http.StatusInternalServerError, false},
		{"unknown ISA -> 400", "no-such-isa", nil, http.StatusBadRequest, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := &fakeEngine{err: tc.err}
			s := New(eng, Config{Workers: 1})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			resp, body := postJSON(t, ts.URL+"/evaluate", EvaluateRequest{ISA: tc.isa})
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, tc.wantStatus, body)
			}
			if tc.wantRetry && resp.Header.Get("Retry-After") == "" {
				t.Error("transient failure carries no Retry-After header")
			}
		})
	}
}

// TestBatch: a batch mixes per-point successes and failures in one 200
// response instead of failing wholesale.
func TestBatch(t *testing.T) {
	eng := &fakeEngine{}
	s := New(eng, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	key := isaKeys(t, 1)[0]

	resp, body := postJSON(t, ts.URL+"/evaluate", EvaluateRequest{
		Points: []PointRequest{{ISA: key}, {ISA: "bogus"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200; body %s", resp.StatusCode, body)
	}
	var er EvaluateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Results) != 2 || er.Errors != 1 {
		t.Fatalf("results = %+v", er)
	}
	if er.Results[0].MeanSpeedup != 1.25 || er.Results[0].Error != "" {
		t.Errorf("valid point = %+v", er.Results[0])
	}
	if er.Results[1].Status != http.StatusBadRequest {
		t.Errorf("bogus point status = %d, want 400", er.Results[1].Status)
	}

	// An empty request names no work.
	if resp, _ := postJSON(t, ts.URL+"/evaluate", EvaluateRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request = %d, want 400", resp.StatusCode)
	}
	// Oversized batches are redirected to /explore.
	big := EvaluateRequest{Points: make([]PointRequest, MaxBatch+1)}
	for i := range big.Points {
		big.Points[i] = PointRequest{ISA: key}
	}
	if resp, _ := postJSON(t, ts.URL+"/evaluate", big); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", resp.StatusCode)
	}
}

// TestExploreJob: an async sweep is accepted with a job id and polls to
// completion with one result per point.
func TestExploreJob(t *testing.T) {
	eng := &fakeEngine{}
	s := New(eng, Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	keys := isaKeys(t, 3)

	resp, body := postJSON(t, ts.URL+"/explore", ExploreRequest{ISAs: keys})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("explore status = %d, want 202; body %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.ID == "" || jr.Total != len(keys) {
		t.Fatalf("job header = %+v", jr)
	}

	waitFor(t, "job completion", func() bool {
		resp, body := getJSON(t, ts.URL+"/explore/"+jr.ID, &jr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d; body %s", resp.StatusCode, body)
		}
		return jr.Status != "running"
	})
	if jr.Status != "done" || jr.Errors != 0 || len(jr.Results) != len(keys) {
		t.Fatalf("finished job = %+v", jr)
	}
	for i, r := range jr.Results {
		if r.ISA != keys[i] || r.MeanSpeedup != 1.25 {
			t.Errorf("result %d = %+v", i, r)
		}
	}

	resp, _ = getJSON(t, ts.URL+"/explore/job-999", &jr)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, body)
		}
	}
	return resp, body
}

// TestHealthzAndMetrics: the observability endpoints answer, and /metrics
// carries both serving-layer and evaluation-layer families.
func TestHealthzAndMetrics(t *testing.T) {
	eng := &fakeEngine{}
	es := &eval.Stats{}
	es.ModelEvals.Add(3)
	s := New(eng, Config{Workers: 2, EvalStats: es})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var h HealthResponse
	if resp, _ := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}

	postJSON(t, ts.URL+"/evaluate", EvaluateRequest{ISA: isaKeys(t, 1)[0]})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	text := string(body)
	for _, w := range []string{
		"compisa_serve_requests_total",
		"compisa_serve_evaluations_total 1",
		"compisa_serve_point_duration_seconds_bucket",
		"compisa_serve_point_duration_seconds_count 1",
		fmt.Sprintf("compisa_eval_stage_total{stage=%q} 3", "model"),
	} {
		if !strings.Contains(text, w) {
			t.Errorf("metrics output missing %q\n%s", w, text)
		}
	}
}
