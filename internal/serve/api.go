package serve

import "compisa/internal/cpu"

// PointRequest names one design point: an ISA choice by its canonical key
// (eval.ChoiceKeys enumerates them) and an optional core configuration;
// nil Config selects the paper's reference core.
type PointRequest struct {
	ISA    string          `json:"isa"`
	Config *cpu.CoreConfig `json:"config,omitempty"`
}

// EvaluateRequest is the body of POST /evaluate. Either Points carries a
// batch, or the single-point fields (ISA, Config) name one design point —
// single-point requests also propagate the point's status onto the HTTP
// response. DeadlineMS bounds how long this caller waits; it never cuts
// short the shared evaluation other callers may be riding.
type EvaluateRequest struct {
	Points     []PointRequest  `json:"points,omitempty"`
	ISA        string          `json:"isa,omitempty"`
	Config     *cpu.CoreConfig `json:"config,omitempty"`
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
}

// PointResult is the outcome for one requested point. Exactly one of the
// score fields or Error is meaningful: a failed point carries Error plus
// the HTTP status its failure maps to (and a Retry-After hint when the
// failure is transient).
type PointResult struct {
	ISA      string `json:"isa"`
	Config   string `json:"config,omitempty"`
	CacheKey string `json:"cache_key,omitempty"`

	MeanSpeedup     float64 `json:"mean_speedup,omitempty"`
	AreaMM2         float64 `json:"area_mm2,omitempty"`
	PeakW           float64 `json:"peak_w,omitempty"`
	DegradedRegions int     `json:"degraded_regions,omitempty"`

	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced"`
	EvalMS    float64 `json:"eval_ms"`

	Error       string `json:"error,omitempty"`
	Status      int    `json:"status,omitempty"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// EvaluateResponse is the body answering POST /evaluate.
type EvaluateResponse struct {
	Results []PointResult `json:"results"`
	Errors  int           `json:"errors,omitempty"`
}

// ExploreRequest is the body of POST /explore: an asynchronous sweep over
// the cross product of ISAs × Configs. Empty ISAs sweeps every enumerable
// choice; empty Configs uses the reference core.
type ExploreRequest struct {
	ISAs    []string         `json:"isas,omitempty"`
	Configs []cpu.CoreConfig `json:"configs,omitempty"`
}

// JobResponse reports an /explore job. Results is populated once Status is
// "done"; a canceled or failed job reports Status "failed" with Error set.
type JobResponse struct {
	ID        string        `json:"id"`
	Status    string        `json:"status"` // running | done | failed
	Total     int           `json:"total"`
	Completed int           `json:"completed"`
	Errors    int           `json:"errors,omitempty"`
	Error     string        `json:"error,omitempty"`
	Results   []PointResult `json:"results,omitempty"`
}

// HealthResponse is the body answering GET /healthz. Status "degraded"
// (store circuit not closed: evaluations serve from memory, durability is
// impaired) still answers 200 — only "draining" is a 503.
type HealthResponse struct {
	Status  string  `json:"status"` // ok | degraded | draining
	UptimeS float64 `json:"uptime_s"`
	// Store is the durable tier's circuit state (closed | open | half-open)
	// when a store is wired; empty otherwise.
	Store string `json:"store,omitempty"`
}

// ErrorResponse is the uniform error body for request-level failures.
type ErrorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}
