// Package serve is the serving layer of the composite-ISA design-point
// evaluation pipeline: a long-lived HTTP/JSON service over internal/eval
// that amortizes the expensive profiling and scoring stages across every
// client instead of once per process.
//
// The request path is admission → coalesce → evaluate → degrade:
//
//   - admission: a bounded worker pool (the same exact-concurrency model as
//     internal/par) plus a bounded queue; excess load is rejected with 429
//     instead of queued without bound;
//   - coalescing: concurrent requests for one (ISA key, canonical config)
//     design point collapse onto a single evaluation via a singleflight
//     over eval's candidate cache, so a thundering herd costs one scoring
//     pass;
//   - evaluation: the shared eval.DB — both cache tiers, warm-startable
//     from a compose-explore checkpoint — under a server-side deadline
//     detached from any individual caller;
//   - degradation: evaluation faults map onto typed HTTP statuses
//     (fault.HTTPStatus) with Retry-After hints for transient ones, and a
//     draining server answers 503 rather than hanging clients.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"compisa/internal/eval"
	"compisa/internal/fault"
	"compisa/internal/jit"
	"compisa/internal/metrics"
	"compisa/internal/par"
)

// Engine is the slice of the evaluation layer the server drives. *eval.DB
// is the production implementation; tests substitute controllable fakes.
type Engine interface {
	// ReferenceMetrics returns the memoized normalization baseline.
	ReferenceMetrics(ctx context.Context) ([]eval.Metric, error)
	// Evaluate scores one design point against ref.
	Evaluate(ctx context.Context, dp eval.DesignPoint, ref []eval.Metric) (*eval.Candidate, error)
}

// MaxBatch bounds the number of points a single /evaluate request may
// carry; larger sweeps belong on the async /explore endpoint.
const MaxBatch = 256

// ErrOverloaded is returned (as a 429) when the admission queue is full.
var ErrOverloaded = errors.New("serve: admission queue full")

// errDraining maps to the 503 a draining server answers new work with.
var errDraining = errors.New("serve: draining")

// Config tunes the server. The zero value selects the documented defaults.
type Config struct {
	// Workers bounds concurrent evaluations (default par.DefaultLimit()).
	Workers int
	// Queue bounds evaluations waiting for a worker slot (default
	// 4*Workers); beyond it requests are rejected with 429.
	Queue int
	// Timeout is the server-side deadline for one design-point evaluation
	// (default 2m). A request's deadline_ms only shortens how long that
	// caller waits, never the evaluation itself.
	Timeout time.Duration
	// EvalStats, when set, exposes the evaluation pipeline's own counters
	// and histograms on /metrics alongside the server's.
	EvalStats *eval.Stats
	// JIT, when set, exposes the native-code executor's counters on
	// /metrics (compisa_serve_jit_*). Typically the same engine wired into
	// the eval.DB behind Engine.
	JIT *jit.Engine
	// Store, when set, is the durable tier's circuit breaker; its state is
	// surfaced on /healthz ("degraded" while the circuit is not closed) and
	// /metrics. Serving never depends on it — a degraded store only means
	// fresh evaluations are not being persisted.
	Store *StoreBreaker
	// Log, if set, receives serving events (rejections, faults, drain).
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = par.DefaultLimit()
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Workers
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	return c
}

// Stats instruments the serving layer; all fields are lock-free and safe
// for concurrent use.
type Stats struct {
	Requests    metrics.Counter // HTTP requests accepted (all endpoints)
	Points      metrics.Counter // design points requested across /evaluate and /explore
	Evaluations metrics.Counter // evaluations started (coalescing leaders)
	Coalesced   metrics.Counter // points that joined an in-flight evaluation
	CacheHits   metrics.Counter // points already evaluated by an earlier request
	Rejected    metrics.Counter // admission rejections (429)
	Timeouts    metrics.Counter // caller deadlines expired (504)
	Faults      metrics.Counter // evaluation errors surfaced to clients
	Latency     metrics.Histogram
}

// Server is the evaluation service. Construct with New; serve its
// Handler() with any http.Server; call Drain on shutdown.
type Server struct {
	cfg   Config
	eng   Engine
	stats Stats
	start time.Time

	sem    chan struct{} // worker slots
	queued chan struct{} // admission tickets (workers + queue)

	flight flightGroup[*eval.Candidate]

	mu   sync.Mutex
	done map[string]bool // cache keys known evaluated (cache-hit accounting)
	jobs map[string]*job
	seq  int

	reqMu    sync.Mutex
	reqN     int
	draining bool
	idle     chan struct{}

	root     context.Context // lifetime of background work (jobs)
	rootStop context.CancelFunc
}

// New builds a server over an engine.
func New(eng Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	root, stop := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		eng:      eng,
		start:    time.Now(),
		sem:      make(chan struct{}, cfg.Workers),
		queued:   make(chan struct{}, cfg.Workers+cfg.Queue),
		done:     map[string]bool{},
		jobs:     map[string]*job{},
		root:     root,
		rootStop: stop,
	}
}

// Stats returns the server's instrumentation (for tests and embedding).
func (s *Server) Stats() *Stats { return &s.stats }

// MarkEvaluated records design-point cache keys as already evaluated, so a
// server warm-started from a checkpoint accounts requests for restored
// points as cache hits (eval.DB.CandidateKeys supplies the keys).
func (s *Server) MarkEvaluated(keys ...string) {
	s.mu.Lock()
	for _, k := range keys {
		s.done[k] = true
	}
	s.mu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /explore", s.handleExploreStart)
	mux.HandleFunc("GET /explore/{id}", s.handleExplorePoll)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// begin admits one HTTP request unless the server is draining.
func (s *Server) begin() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.draining {
		return false
	}
	s.reqN++
	return true
}

func (s *Server) end() {
	s.reqMu.Lock()
	s.reqN--
	if s.draining && s.reqN == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.reqMu.Unlock()
}

// Draining reports whether the server has stopped accepting work.
func (s *Server) Draining() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	return s.draining
}

// Drain moves the server into draining mode — new requests are answered
// with 503 + Retry-After — and waits for every in-flight request to finish
// or ctx to expire. Background /explore jobs are canceled: their clients
// poll, so they observe the failure and resubmit elsewhere. Drain is the
// SIGTERM half of graceful shutdown; pair it with http.Server.Shutdown for
// the connection half.
func (s *Server) Drain(ctx context.Context) error {
	s.reqMu.Lock()
	s.draining = true
	var ch chan struct{}
	if s.reqN > 0 {
		if s.idle == nil {
			s.idle = make(chan struct{})
		}
		ch = s.idle
	}
	s.reqMu.Unlock()
	s.rootStop()
	s.logf("serve: draining (%d requests in flight)", s.InFlight())
	if ch == nil {
		return nil
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %d requests still in flight: %w", s.InFlight(), ctx.Err())
	}
}

// InFlight reports the number of HTTP requests currently being served.
func (s *Server) InFlight() int {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	return s.reqN
}

// admit acquires a worker slot within the bounded queue: the caller either
// holds a slot (err == nil; release with s.release), is rejected because
// workers+queue tickets are exhausted (ErrOverloaded), or gave up waiting
// (ctx.Err()).
func (s *Server) admit(ctx context.Context) error {
	select {
	case s.queued <- struct{}{}:
	default:
		return ErrOverloaded
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-s.queued
		return ctx.Err()
	}
}

func (s *Server) release() {
	<-s.sem
	<-s.queued
}

// evalPoint runs one design point through the full serving path:
// cache-hit accounting, coalescing, admission, and the detached evaluation
// under the server deadline. The returned flags report whether the point
// was already evaluated before this request (cached) and whether this call
// collapsed onto another in-flight evaluation (coalesced).
func (s *Server) evalPoint(ctx context.Context, dp eval.DesignPoint) (c *eval.Candidate, cached, coalesced bool, err error) {
	key := dp.CacheKey()
	s.mu.Lock()
	cached = s.done[key]
	s.mu.Unlock()
	if cached {
		s.stats.CacheHits.Inc()
	}
	c, coalesced, err = s.flight.Do(ctx, key, func() (*eval.Candidate, error) {
		if err := s.admit(ctx); err != nil {
			return nil, err
		}
		defer s.release()
		// Detach from the first caller: its deadline bounds how long it
		// waits, not how long the shared evaluation may run.
		ectx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.Timeout)
		defer cancel()
		s.stats.Evaluations.Inc()
		ref, err := s.eng.ReferenceMetrics(ectx)
		if err != nil {
			return nil, err
		}
		cand, err := s.eng.Evaluate(ectx, dp, ref)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.done[key] = true
		s.mu.Unlock()
		return cand, nil
	})
	if coalesced {
		s.stats.Coalesced.Inc()
	}
	return c, cached, coalesced, err
}

// resolvePoint validates one requested point into a design point.
func resolvePoint(p PointRequest) (eval.DesignPoint, error) {
	choice, ok := eval.ChoiceByKey(p.ISA)
	if !ok {
		return eval.DesignPoint{}, fmt.Errorf("unknown ISA key %q", p.ISA)
	}
	cfg := eval.ReferenceConfig()
	if p.Config != nil {
		cfg = *p.Config
		if err := cfg.Validate(); err != nil {
			return eval.DesignPoint{}, fmt.Errorf("invalid config: %w", err)
		}
	}
	return eval.DesignPoint{ISA: choice, Cfg: cfg}, nil
}

// evalOne produces the wire result for one point, folding every failure
// mode into the result's status/error fields.
func (s *Server) evalOne(ctx context.Context, p PointRequest) PointResult {
	s.stats.Points.Inc()
	res := PointResult{ISA: p.ISA}
	start := time.Now()
	defer func() { res.EvalMS = float64(time.Since(start).Microseconds()) / 1e3 }()
	dp, err := resolvePoint(p)
	if err != nil {
		res.Error, res.Status = err.Error(), http.StatusBadRequest
		return res
	}
	res.Config = dp.Cfg.Name()
	res.CacheKey = dp.CacheKey()
	c, cached, coalesced, err := s.evalPoint(ctx, dp)
	s.stats.Latency.Since(start)
	res.Cached, res.Coalesced = cached, coalesced
	if err != nil {
		res.Status = fault.HTTPStatus(err)
		res.Error = err.Error()
		switch {
		case errors.Is(err, ErrOverloaded):
			res.Status = http.StatusTooManyRequests
			res.RetryAfterS = 1
			s.stats.Rejected.Inc()
		case res.Status == http.StatusGatewayTimeout:
			s.stats.Timeouts.Inc()
		default:
			s.stats.Faults.Inc()
		}
		if d, ok := fault.RetryAfter(err); ok {
			res.RetryAfterS = int(d.Seconds())
		}
		return res
	}
	res.MeanSpeedup = c.MeanSpeedup()
	res.AreaMM2 = c.AreaMM2
	res.PeakW = c.PeakW
	for _, d := range c.Degraded {
		if d {
			res.DegradedRegions++
		}
	}
	return res
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if !s.serveBegin(w) {
		return
	}
	defer s.end()
	var req EvaluateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	points := req.Points
	single := len(points) == 0
	if single {
		if req.ISA == "" {
			writeError(w, http.StatusBadRequest, "request names no points: set isa or points")
			return
		}
		points = []PointRequest{{ISA: req.ISA, Config: req.Config}}
	}
	if len(points) > MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d; use /explore for sweeps", len(points), MaxBatch))
		return
	}
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	resp := EvaluateResponse{Results: make([]PointResult, len(points))}
	_, errs := par.MapAll(ctx, len(points), 0, func(i int) (struct{}, error) {
		resp.Results[i] = s.evalOne(ctx, points[i])
		return struct{}{}, nil
	})
	// Points the pool skipped because the request deadline already expired
	// get the deadline's status instead of a zero result.
	for i, err := range errs {
		if err != nil && resp.Results[i].ISA == "" {
			resp.Results[i] = PointResult{
				ISA: points[i].ISA, Error: err.Error(), Status: fault.HTTPStatus(err),
			}
		}
	}
	for i := range resp.Results {
		if resp.Results[i].Error != "" {
			resp.Errors++
		}
	}
	status := http.StatusOK
	if single && resp.Results[0].Status != 0 {
		status = resp.Results[0].Status
		if ra := resp.Results[0].RetryAfterS; ra > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ra))
		}
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.stats.Requests.Inc()
	h := HealthResponse{
		Status:  "ok",
		UptimeS: time.Since(s.start).Seconds(),
	}
	if b := s.cfg.Store; b != nil {
		h.Store = string(b.State())
		if b.Degraded() {
			// Degraded is still 200: the service answers evaluations from
			// memory; only durability is impaired. Load balancers keep
			// routing here, operators alert on the status string.
			h.Status = "degraded"
		}
	}
	if s.Draining() {
		h.Status = "draining"
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

// serveBegin counts the request in, or answers 503 when draining.
func (s *Server) serveBegin(w http.ResponseWriter) bool {
	s.stats.Requests.Inc()
	if !s.begin() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, errDraining.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Status: status})
}

func decodeJSON(r *http.Request, v any) error {
	return json.NewDecoder(r.Body).Decode(v)
}

var _ Engine = (*eval.DB)(nil)
