package compiler

import (
	"testing"

	"compisa/internal/code"
	"compisa/internal/cpu"
	"compisa/internal/ir"
	"compisa/internal/isa"
	"compisa/internal/mem"
)

// kernels are small IR regions exercising every backend feature; each build
// is deterministic, parameterized by the target register width (pointer size
// changes data layout, exactly as compiling for a 32- vs 64-bit feature set
// would).
type kernel struct {
	name  string
	build func(width int) (*ir.Func, *mem.Memory)
}

const dataBase = uint64(code.DataBase)

func lcg(seed uint32) func() uint32 {
	s := seed
	return func() uint32 {
		s = s*1664525 + 1013904223
		return s
	}
}

// sumLoopKernel: sum a small i32 array through an i64 accumulator.
func sumLoopKernel(width int) (*ir.Func, *mem.Memory) {
	m := mem.New()
	r := lcg(1)
	const n = 64
	for i := 0; i < n; i++ {
		m.Write(dataBase+uint64(i)*4, 4, uint64(r()%1000))
	}
	b := ir.NewBuilder("sumloop")
	header, body, exit := b.Block("header"), b.Block("body"), b.Block("exit")
	base := b.Const(ir.Ptr, int64(dataBase))
	i := b.Const(ir.I64, 0)
	acc := b.Const(ir.I64, 0)
	lim := b.Const(ir.I64, n)
	b.Br(header)
	b.SetBlock(header)
	c := b.Cmp(ir.LT, ir.I64, i, lim)
	b.CondBr(c, body, exit, 0.95)
	b.SetBlock(body)
	v := b.Load(ir.I32, base, i, 4, 0)
	v64 := b.Unary(ir.Ext, ir.I64, v)
	b.Assign(acc, ir.Add, ir.I64, acc, v64)
	b.AddImm(i, i, ir.I64, 1)
	b.Br(header)
	b.SetBlock(exit)
	lo := b.Unary(ir.Trunc, ir.I32, acc)
	b.Ret(lo)
	return b.F, m
}

// pressureKernel keeps ~26 integer values live across a loop, forcing heavy
// spilling at shallow register depths.
func pressureKernel(width int) (*ir.Func, *mem.Memory) {
	m := mem.New()
	b := ir.NewBuilder("pressure")
	header, body, exit := b.Block("header"), b.Block("body"), b.Block("exit")
	const nv = 24
	vals := make([]ir.VReg, nv)
	for i := range vals {
		vals[i] = b.Const(ir.I32, int64(i*7+3))
	}
	i := b.Const(ir.I32, 0)
	lim := b.Const(ir.I32, 40)
	acc := b.Const(ir.I32, 0x9e3779b9-1<<31)
	b.Br(header)
	b.SetBlock(header)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, body, exit, 0.95)
	b.SetBlock(body)
	for k := 0; k < nv; k++ {
		op := []ir.Op{ir.Add, ir.Xor, ir.Sub}[k%3]
		b.Assign(acc, op, ir.I32, acc, vals[k])
		// Keep every val live across iterations by updating it too.
		b.Assign(vals[k], ir.Add, ir.I32, vals[k], acc)
	}
	b.AddImm(i, i, ir.I32, 1)
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(acc)
	return b.F, m
}

// branchyKernel: a data-dependent diamond in a loop (if-conversion target).
func branchyKernel(width int) (*ir.Func, *mem.Memory) {
	m := mem.New()
	r := lcg(7)
	const n = 128
	for i := 0; i < n; i++ {
		m.Write(dataBase+uint64(i)*4, 4, uint64(r()))
	}
	b := ir.NewBuilder("branchy")
	header, body, tArm, fArm, join, exit := b.Block("header"), b.Block("body"),
		b.Block("t"), b.Block("f"), b.Block("join"), b.Block("exit")
	base := b.Const(ir.Ptr, int64(dataBase))
	i := b.Const(ir.I32, 0)
	lim := b.Const(ir.I32, n)
	acc := b.Const(ir.I32, 1)
	x := b.Const(ir.I32, 0)
	three := b.Const(ir.I32, 3)
	seven := b.Const(ir.I32, 7)
	one := b.Const(ir.I32, 1)
	b.Br(header)
	b.SetBlock(header)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, body, exit, 0.95)
	b.SetBlock(body)
	v := b.Load(ir.I32, base, i, 4, 0)
	lowbit := b.Bin(ir.And, ir.I32, v, one)
	cb := b.Cmp(ir.NE, ir.I32, lowbit, x)
	// Reuse x as the diamond's merged value: both arms assign it.
	b.CondBr(cb, tArm, fArm, 0.5)
	b.SetBlock(tArm)
	t1 := b.Bin(ir.Mul, ir.I32, v, three)
	b.Assign(x, ir.Add, ir.I32, t1, seven)
	b.Br(join)
	b.SetBlock(fArm)
	b.Assign(x, ir.Xor, ir.I32, v, seven)
	b.Br(join)
	b.SetBlock(join)
	b.Assign(acc, ir.Xor, ir.I32, acc, x)
	b.Assign(acc, ir.Add, ir.I32, acc, acc) // shift-ish mix
	b.AddImm(i, i, ir.I32, 1)
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(acc)
	return b.F, m
}

// vecKernel: c[i] = a[i]*s + b[i] over f32 arrays (vectorizable), then an
// integer checksum over the result bits.
func vecKernel(width int) (*ir.Func, *mem.Memory) {
	m := mem.New()
	const n = 64
	aAddr, bAddr, cAddr := dataBase, dataBase+0x1000, dataBase+0x2000
	r := lcg(11)
	for i := 0; i < n; i++ {
		m.Write(aAddr+uint64(i)*4, 4, uint64(f32bits(float32(r()%100)/8)))
		m.Write(bAddr+uint64(i)*4, 4, uint64(f32bits(float32(r()%100)/16)))
	}
	b := ir.NewBuilder("vec")
	header, body, sumHdr, sumBody, exit := b.Block("header"), b.Block("body"),
		b.Block("sumhdr"), b.Block("sumbody"), b.Block("exit")
	pa := b.Const(ir.Ptr, int64(aAddr))
	pb := b.Const(ir.Ptr, int64(bAddr))
	pc := b.Const(ir.Ptr, int64(cAddr))
	s := b.FConst(ir.F32, 1.5)
	i := b.Const(ir.I32, 0)
	lim := b.Const(ir.I32, n)
	b.Br(header)
	b.SetBlock(header)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, body, sumHdr, 0.9)
	b.SetBlock(body)
	av := b.Load(ir.F32, pa, i, 4, 0)
	bv := b.Load(ir.F32, pb, i, 4, 0)
	t := b.Bin(ir.FMul, ir.F32, av, s)
	u := b.Bin(ir.FAdd, ir.F32, t, bv)
	b.Store(ir.F32, u, pc, i, 4, 0)
	b.AddImm(i, i, ir.I32, 1)
	b.Br(header)
	body.VecLoop = &ir.VecLoopInfo{IndVar: i, Limit: lim, Lanes: 4}
	// Scalar integer checksum over the produced bits.
	b.SetBlock(sumHdr)
	j := b.Const(ir.I32, 0)
	acc := b.Const(ir.I32, 0)
	b.Br(sumBody)
	b.SetBlock(sumBody)
	w := b.Load(ir.I32, pc, j, 4, 0)
	b.Assign(acc, ir.Xor, ir.I32, acc, w)
	b.AddImm(j, j, ir.I32, 1)
	c2 := b.Cmp(ir.LT, ir.I32, j, lim)
	b.CondBr(c2, sumBody, exit, 0.9)
	b.SetBlock(exit)
	b.Ret(acc)
	return b.F, m
}

// byteKernel: byte-granularity table updates.
func byteKernel(width int) (*ir.Func, *mem.Memory) {
	m := mem.New()
	for i := 0; i < 256; i++ {
		m.Store8(dataBase+uint64(i), byte(i*37))
	}
	b := ir.NewBuilder("bytes")
	body, exit := b.Block("body"), b.Block("exit")
	base := b.Const(ir.Ptr, int64(dataBase))
	i := b.Const(ir.I32, 0)
	lim := b.Const(ir.I32, 200)
	acc := b.Const(ir.I32, 0)
	mask := b.Const(ir.I32, 255)
	one := b.Const(ir.I32, 1)
	b.Br(body)
	b.SetBlock(body)
	v := b.LoadByte(base, i, 1, 0)
	idx2 := b.Bin(ir.Mul, ir.I32, i, b.Const(ir.I32, 7))
	idx2m := b.Bin(ir.And, ir.I32, idx2, mask)
	w := b.Bin(ir.Add, ir.I32, v, one)
	b.StoreByte(w, base, idx2m, 1, 0)
	b.Assign(acc, ir.Add, ir.I32, acc, v)
	b.AddImm(i, i, ir.I32, 1)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, body, exit, 0.95)
	b.SetBlock(exit)
	b.Ret(acc)
	return b.F, m
}

// i64Kernel: 64-bit shifts, xors, and compares (pair-lowered on 32-bit).
func i64Kernel(width int) (*ir.Func, *mem.Memory) {
	m := mem.New()
	m.Write(dataBase, 8, 0x0123456789abcdef)
	m.Write(dataBase+8, 8, 0xfedcba9876543210)
	b := ir.NewBuilder("i64ops")
	body, exit := b.Block("body"), b.Block("exit")
	base := b.Const(ir.Ptr, int64(dataBase))
	x := b.Load(ir.I64, base, ir.NoReg, 1, 0)
	y := b.Load(ir.I64, base, ir.NoReg, 1, 8)
	i := b.Const(ir.I32, 0)
	lim := b.Const(ir.I32, 30)
	acc := b.Const(ir.I64, 0)
	b.Br(body)
	b.SetBlock(body)
	s1 := b.Shift(ir.Shl, ir.I64, x, 13)
	b.Assign(x, ir.Xor, ir.I64, x, s1)
	s2 := b.Shift(ir.Shr, ir.I64, x, 7)
	b.Assign(x, ir.Xor, ir.I64, x, s2)
	s3 := b.Shift(ir.Sar, ir.I64, y, 3)
	b.Assign(y, ir.Add, ir.I64, y, s3)
	cLess := b.Cmp(ir.LT, ir.I64, x, y)
	big := b.Select(ir.I64, cLess, y, x)
	b.Assign(acc, ir.Add, ir.I64, acc, big)
	b.Assign(acc, ir.Sub, ir.I64, acc, s3)
	b.AddImm(i, i, ir.I32, 1)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, body, exit, 0.95)
	b.SetBlock(exit)
	xl := b.Unary(ir.Trunc, ir.I32, acc)
	s4 := b.Shift(ir.Shr, ir.I64, acc, 17)
	xh := b.Unary(ir.Trunc, ir.I32, s4)
	r := b.Bin(ir.Xor, ir.I32, xl, xh)
	b.Ret(r)
	return b.F, m
}

// ptrChaseKernel: traverse a pointer cycle whose node layout depends on the
// target pointer size.
func ptrChaseKernel(width int) (*ir.Func, *mem.Memory) {
	m := mem.New()
	ptrBytes := width / 8
	const n = 64
	const stride = 16
	// Permutation cycle over n nodes (deterministic).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i*29 + 13) % n
	}
	for i := 0; i < n; i++ {
		node := dataBase + uint64(i)*stride
		next := dataBase + uint64(perm[i])*stride
		m.Write(node, ptrBytes, next)
		m.Write(node+8, 4, uint64(i*i+7))
	}
	b := ir.NewBuilder("ptrchase")
	body, exit := b.Block("body"), b.Block("exit")
	p := b.Const(ir.Ptr, int64(dataBase))
	i := b.Const(ir.I32, 0)
	lim := b.Const(ir.I32, 100)
	acc := b.Const(ir.I32, 0)
	b.Br(body)
	b.SetBlock(body)
	v := b.Load(ir.I32, p, ir.NoReg, 1, 8)
	b.Assign(acc, ir.Add, ir.I32, acc, v)
	nx := b.Load(ir.Ptr, p, ir.NoReg, 1, 0)
	b.Copy(p, nx)
	b.AddImm(i, i, ir.I32, 1)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, body, exit, 0.95)
	b.SetBlock(exit)
	b.Ret(acc)
	return b.F, m
}

func allKernels() []kernel {
	return []kernel{
		{"sumloop", sumLoopKernel},
		{"pressure", pressureKernel},
		{"branchy", branchyKernel},
		{"vec", vecKernel},
		{"bytes", byteKernel},
		{"i64ops", i64Kernel},
		{"ptrchase", ptrChaseKernel},
	}
}

// reference runs the IR interpreter on a fresh build.
func reference(t *testing.T, k kernel, width int) uint64 {
	t.Helper()
	f, m := k.build(width)
	if err := f.Verify(); err != nil {
		t.Fatalf("%s: %v", k.name, err)
	}
	res, err := ir.Interp(f, m, width/8, 50_000_000)
	if err != nil {
		t.Fatalf("%s interp: %v", k.name, err)
	}
	return res.Ret & 0xffffffff
}

func compileAndRun(t *testing.T, k kernel, fs isa.FeatureSet, opts Options) (uint64, *code.Program, cpu.ExecResult) {
	t.Helper()
	f, m := k.build(fs.Width)
	prog, err := Compile(f, fs, opts)
	if err != nil {
		t.Fatalf("%s for %s: %v", k.name, fs.ShortName(), err)
	}
	st := cpu.NewState(m)
	res, err := cpu.Run(prog, st, 50_000_000, nil)
	if err != nil {
		t.Fatalf("%s for %s: run: %v\n%s", k.name, fs.ShortName(), err, prog)
	}
	return res.Ret & 0xffffffff, prog, res
}

// TestDifferentialAllFeatureSets is the backbone correctness test: every
// kernel must compute the identical checksum on every one of the 26 derived
// feature sets, matching the IR interpreter's reference result.
func TestDifferentialAllFeatureSets(t *testing.T) {
	for _, k := range allKernels() {
		want32 := reference(t, k, 32)
		want64 := reference(t, k, 64)
		for _, fs := range isa.Derive() {
			want := want64
			if fs.Width == 32 {
				want = want32
			}
			got, _, _ := compileAndRun(t, k, fs, Options{})
			if got != want {
				t.Errorf("%s on %s: got %#x want %#x", k.name, fs.ShortName(), got, want)
			}
		}
	}
}

// TestDifferentialAggressiveIfConversion forces if-conversion of every
// convertible pattern; semantics must be unchanged.
func TestDifferentialAggressiveIfConversion(t *testing.T) {
	opts := Options{IfConvert: &ifConvertOptions{PipelineDepth: 1000, MaxArmInstrs: 64}}
	for _, k := range allKernels() {
		want := reference(t, k, 64)
		fs := isa.Superset
		got, prog, _ := compileAndRun(t, k, fs, opts)
		if got != want {
			t.Errorf("%s superset aggressive ifcvt: got %#x want %#x", k.name, got, want)
		}
		if k.name == "branchy" && prog.Stats.IfConversions == 0 {
			t.Errorf("branchy: expected if-conversions under aggressive options")
		}
	}
}

func TestMicroX86IsOneUopPerInstr(t *testing.T) {
	fs := isa.MustNew(isa.MicroX86, 64, 32, isa.FullPredication)
	for _, k := range allKernels() {
		f, _ := k.build(fs.Width)
		prog, err := Compile(f, fs, Options{})
		if err != nil {
			t.Fatalf("%s: %v", k.name, err)
		}
		for i := range prog.Instrs {
			if n := prog.Instrs[i].NumUops(); n != 1 {
				t.Errorf("%s: instr %d (%s) decodes to %d uops under microx86",
					k.name, i, code.FormatInstr(&prog.Instrs[i]), n)
			}
		}
		if prog.Stats.FoldedLoads != 0 {
			t.Errorf("%s: microx86 must not fold loads", k.name)
		}
	}
}

func TestSpillsShrinkWithRegisterDepth(t *testing.T) {
	k := kernel{"pressure", pressureKernel}
	var refills [4]int
	for di, depth := range []int{8, 16, 32, 64} {
		fs := isa.MustNew(isa.MicroX86, 32, depth, isa.PartialPredication)
		f, _ := k.build(32)
		prog, err := Compile(f, fs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		refills[di] = prog.Stats.RefillLoads
	}
	if refills[0] <= refills[1] || refills[1] <= refills[3] {
		t.Errorf("refill loads must shrink with depth: %v", refills)
	}
	if refills[3] != 0 {
		t.Errorf("depth 64 should not spill the pressure kernel (26 live): got %d refills", refills[3])
	}
}

func TestIfConversionReducesBranches(t *testing.T) {
	countJcc := func(p *code.Program) int {
		n := 0
		for i := range p.Instrs {
			if p.Instrs[i].Op == code.JCC {
				n++
			}
		}
		return n
	}
	f1, _ := branchyKernel(64)
	partial, err := Compile(f1, isa.MustNew(isa.FullX86, 64, 32, isa.PartialPredication), Options{})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := branchyKernel(64)
	full, err := Compile(f2, isa.MustNew(isa.FullX86, 64, 32, isa.FullPredication), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.IfConversions == 0 {
		t.Fatal("full predication should if-convert the unbiased diamond")
	}
	if countJcc(full) >= countJcc(partial) {
		t.Errorf("if-conversion should reduce static branches: full=%d partial=%d",
			countJcc(full), countJcc(partial))
	}
	predicated := 0
	for i := range full.Instrs {
		if full.Instrs[i].Predicated() {
			predicated++
		}
	}
	if predicated == 0 {
		t.Error("converted program must contain predicated instructions")
	}
}

func TestVectorizationOnlyWithSIMD(t *testing.T) {
	f1, _ := vecKernel(64)
	simd, err := Compile(f1, isa.X8664, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if simd.Stats.VectorLoops != 1 {
		t.Errorf("x86 target should vectorize the loop: %+v", simd.Stats)
	}
	hasVec := false
	for i := range simd.Instrs {
		if simd.Instrs[i].Op.IsVector() {
			hasVec = true
		}
	}
	if !hasVec {
		t.Error("vectorized program must contain SSE instructions")
	}
	f2, _ := vecKernel(64)
	scalar, err := Compile(f2, isa.X86izedAlpha, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Stats.VectorLoops != 0 || scalar.Stats.ScalarLoops != 1 {
		t.Errorf("microx86 target must scalarize: %+v", scalar.Stats)
	}
}

// foldKernel: acc += a[i] with a single-use i32 load feeding the add — the
// canonical memory-operand folding opportunity.
func foldKernel(width int) (*ir.Func, *mem.Memory) {
	m := mem.New()
	const n = 32
	for i := 0; i < n; i++ {
		m.Write(dataBase+uint64(i)*4, 4, uint64(i*11+1))
	}
	b := ir.NewBuilder("fold")
	body, exit := b.Block("body"), b.Block("exit")
	base := b.Const(ir.Ptr, int64(dataBase))
	i := b.Const(ir.I32, 0)
	lim := b.Const(ir.I32, n)
	acc := b.Const(ir.I32, 0)
	b.Br(body)
	b.SetBlock(body)
	v := b.Load(ir.I32, base, i, 4, 0)
	b.Assign(acc, ir.Add, ir.I32, acc, v)
	b.AddImm(i, i, ir.I32, 1)
	c := b.Cmp(ir.LT, ir.I32, i, lim)
	b.CondBr(c, body, exit, 0.9)
	b.SetBlock(exit)
	b.Ret(acc)
	return b.F, m
}

func TestFoldedLoadsOnlyOnFullX86(t *testing.T) {
	k := kernel{"fold", foldKernel}
	want := reference(t, k, 64)
	got, x86, _ := compileAndRun(t, k, isa.X8664, Options{})
	if got != want {
		t.Fatalf("fold kernel wrong on x86-64: %#x vs %#x", got, want)
	}
	if x86.Stats.FoldedLoads == 0 {
		t.Error("x86 should fold the single-use array load into the add")
	}
	f2, _ := foldKernel(64)
	noFold, err := Compile(f2, isa.X8664, Options{DisableFolding: true})
	if err != nil {
		t.Fatal(err)
	}
	if noFold.Stats.FoldedLoads != 0 {
		t.Error("DisableFolding must suppress memory-operand folding")
	}
	if len(noFold.Instrs) <= len(x86.Instrs) {
		t.Error("folding should shrink static code")
	}
	// The folded instruction decodes into 2 micro-ops — the 1:n case.
	twoUop := 0
	for i := range x86.Instrs {
		if x86.Instrs[i].NumUops() == 2 {
			twoUop++
		}
	}
	if twoUop == 0 {
		t.Error("folded program must contain 1:2 macro-ops")
	}
}

func TestRegisterDepthTradesSpillsForPrefixes(t *testing.T) {
	maxReg := func(p *code.Program) int {
		max := 0
		var regs []code.Reg
		for i := range p.Instrs {
			regs = p.Instrs[i].IntRegs(regs[:0])
			for _, r := range regs {
				if int(r) > max {
					max = int(r)
				}
			}
		}
		return max
	}
	f1, _ := pressureKernel(32)
	d64, err := Compile(f1, isa.MustNew(isa.MicroX86, 32, 64, isa.PartialPredication), Options{})
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := pressureKernel(32)
	d8, err := Compile(f2, isa.MustNew(isa.MicroX86, 32, 8, isa.PartialPredication), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 64 holds the working set in REXBC-range registers instead of
	// spilling; depth 8 never references registers above 7.
	if maxReg(d64) < 16 {
		t.Errorf("depth-64 compile of a 26-live kernel should reach REXBC registers, max reg %d", maxReg(d64))
	}
	if maxReg(d8) > 7 {
		t.Errorf("depth-8 compile uses register r%d beyond its depth", maxReg(d8))
	}
	// Depth 8 pays in spill instructions instead of prefix bytes.
	if len(d8.Instrs) <= len(d64.Instrs) {
		t.Errorf("depth 8 must add spill instructions: %d vs %d", len(d8.Instrs), len(d64.Instrs))
	}
	if d8.Stats.RefillLoads == 0 || d64.Stats.RefillLoads != 0 {
		t.Errorf("spill counts wrong: d8=%d d64=%d", d8.Stats.RefillLoads, d64.Stats.RefillLoads)
	}
}

func TestCompileStatsPopulated(t *testing.T) {
	f, _ := sumLoopKernel(64)
	prog, err := Compile(f, isa.X8664, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Stats.StaticInstrs != len(prog.Instrs) {
		t.Error("StaticInstrs mismatch")
	}
	if prog.Stats.CodeBytes != prog.Size {
		t.Error("CodeBytes mismatch")
	}
	if prog.Size == 0 || len(prog.PC) != len(prog.Instrs) {
		t.Error("layout missing")
	}
}
