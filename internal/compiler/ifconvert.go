package compiler

import (
	"compisa/internal/code"
	"compisa/internal/isa"
)

// ifConvertOptions tunes the profitability heuristic. The defaults mirror
// LLVM's machine if-converter: profitability weighs the expected
// misprediction cost of the branch (derived from profile probability and the
// configured pipeline depth) against the wasted work of executing both arms.
type ifConvertOptions struct {
	// PipelineDepth approximates the misprediction penalty in cycles.
	PipelineDepth float64
	// MaxArmInstrs bounds the size of a predicable arm.
	MaxArmInstrs int
}

func defaultIfConvertOptions() ifConvertOptions {
	return ifConvertOptions{PipelineDepth: 14, MaxArmInstrs: 12}
}

// runIfConvert performs machine-level if-conversion for feature sets with
// full predication, handling the three LLVM patterns (Section IV): diamond
// (both arms rejoin), triangle (the true block falls into the false block),
// and simple (the arms split without rejoining). It repeats until no pattern
// converts, so nested hammocks collapse bottom-up.
func runIfConvert(f *mFunc, fs isa.FeatureSet, opts ifConvertOptions, stats *code.CompileStats) {
	if fs.Predication != isa.FullPredication {
		return
	}
	for {
		f.computeCFG()
		if !ifConvertOnce(f, opts, stats) {
			return
		}
	}
}

func ifConvertOnce(f *mFunc, opts ifConvertOptions, stats *code.CompileStats) bool {
	for _, a := range f.blocks {
		if a.term.Kind != termJcc {
			continue
		}
		t := a.term.Taken
		fb := f.fallTarget(a)
		if t == nil || fb == nil || t == fb || t == a || fb == a {
			continue
		}
		// Diamond: A -> {T, F}; T and F rejoin at the same block.
		if singlePred(t, a) && singlePred(fb, a) {
			tj, fj := onlySucc(f, t), onlySucc(f, fb)
			if tj != nil && tj == fj && predicable(t, opts) && predicable(fb, opts) &&
				profitableDiamond(a, t, fb, opts) {
				convertDiamond(f, a, t, fb, tj)
				stats.IfConversions++
				return true
			}
		}
		// Triangle: A -> {T, F}; T's only successor is F.
		if singlePred(t, a) && onlySucc(f, t) == fb && predicable(t, opts) &&
			profitableTriangle(a, t, opts) {
			convertTriangle(f, a, t, fb)
			stats.IfConversions++
			return true
		}
		// Simple: A -> {T, F}; T leaves for elsewhere without rejoining F.
		if singlePred(t, a) {
			x := onlySucc(f, t)
			if x != nil && x != fb && predicable(t, opts) && profitableSimple(a, t, opts) {
				convertSimple(f, a, t, fb, x)
				stats.IfConversions++
				return true
			}
		}
	}
	return false
}

func singlePred(b, pred *mBlock) bool {
	return len(b.preds) == 1 && b.preds[0] == pred
}

// onlySucc returns b's unique successor, or nil.
func onlySucc(f *mFunc, b *mBlock) *mBlock {
	if len(b.succs) == 1 {
		return b.succs[0]
	}
	return nil
}

// predicable reports whether every instruction of the block can carry a
// predicate prefix: no flag consumers or producers-for-consumption (the
// predicate definition consumes the dominating compare's flags first), and
// no already-predicated instructions.
func predicable(b *mBlock, opts ifConvertOptions) bool {
	if len(b.instrs) > opts.MaxArmInstrs {
		return false
	}
	for i := range b.instrs {
		in := &b.instrs[i]
		if in.predicated() {
			return false
		}
		switch in.Op {
		case code.CMP, code.TEST, code.FCMP, code.SETCC, code.CMOVCC, code.NOP:
			return false
		}
		if in.KeepFlags {
			return false
		}
	}
	return true
}

func armCost(b *mBlock) float64 { return float64(len(b.instrs)) }

// profitability: expected misprediction cost saved vs. wasted issue slots of
// the arm(s) that would not have executed, as in LLVM's
// MachineBranchProbability-driven heuristic.
func profitableDiamond(a, t, fb *mBlock, opts ifConvertOptions) bool {
	p := float64(a.term.Prob)
	minp := p
	if 1-p < minp {
		minp = 1 - p
	}
	branchCost := minp*opts.PipelineDepth + 1        // +1: the branch itself
	predCost := (1-p)*armCost(t) + p*armCost(fb) + 1 // +1: SETcc
	return predCost < branchCost
}

func profitableTriangle(a, t *mBlock, opts ifConvertOptions) bool {
	p := float64(a.term.Prob) // probability T executes
	minp := p
	if 1-p < minp {
		minp = 1 - p
	}
	branchCost := minp*opts.PipelineDepth + 1
	predCost := (1-p)*armCost(t) + 1
	return predCost < branchCost
}

func profitableSimple(a, t *mBlock, opts ifConvertOptions) bool {
	// Only the duplicated-work tradeoff of the T arm matters; the
	// conditional branch itself remains. Convert small arms under
	// unbiased branches (scheduling freedom + one JMP removed).
	p := float64(a.term.Prob)
	minp := p
	if 1-p < minp {
		minp = 1 - p
	}
	return minp >= 0.25 && armCost(t) <= 4
}

// predicate stamps every instruction of the block with (pred, sense).
func predicate(b *mBlock, pred vreg, sense bool) {
	for i := range b.instrs {
		b.instrs[i].Pred = pred
		b.instrs[i].PredSense = sense
	}
}

// setccInto appends "SETcc p" to a, consuming the flags its compare set.
func setccInto(f *mFunc, a *mBlock) vreg {
	p := f.newVReg(false)
	set := minstr(code.SETCC, 4)
	set.Dst, set.CC = p, a.term.CC
	a.instrs = append(a.instrs, set)
	return p
}

func removeBlocks(f *mFunc, dead ...*mBlock) {
	isDead := map[*mBlock]bool{}
	for _, d := range dead {
		isDead[d] = true
	}
	var keep []*mBlock
	for _, b := range f.blocks {
		if !isDead[b] {
			keep = append(keep, b)
		}
	}
	f.blocks = keep
	for i, b := range f.blocks {
		b.id = i
	}
}

func convertDiamond(f *mFunc, a, t, fb, join *mBlock) {
	p := setccInto(f, a)
	predicate(t, p, true)
	predicate(fb, p, false)
	a.instrs = append(a.instrs, t.instrs...)
	a.instrs = append(a.instrs, fb.instrs...)
	a.term = mTerm{Kind: termJmp, Taken: join}
	removeBlocks(f, t, fb)
}

func convertTriangle(f *mFunc, a, t, fb *mBlock) {
	p := setccInto(f, a)
	predicate(t, p, true)
	a.instrs = append(a.instrs, t.instrs...)
	a.term = mTerm{Kind: termJmp, Taken: fb}
	removeBlocks(f, t)
}

func convertSimple(f *mFunc, a, t, fb, x *mBlock) {
	p := setccInto(f, a)
	predicate(t, p, true)
	a.instrs = append(a.instrs, t.instrs...)
	// Re-test the predicate: branch to X when it held, else fall to F.
	tst := minstr(code.TEST, 4)
	tst.Src1, tst.Src2 = p, p
	tst.KeepFlags = true
	a.instrs = append(a.instrs, tst)
	a.term = mTerm{Kind: termJcc, CC: code.CCNE, Taken: x, Fall: fb, Prob: a.term.Prob}
	removeBlocks(f, t)
}
