package compiler

import (
	"fmt"

	"compisa/internal/code"
	"compisa/internal/isa"
)

// This file legalizes emitted code for restricted encoding targets (alpha64):
// every instruction the x86-oriented emitter produced that the target cannot
// encode is rewritten into an equivalent target-legal sequence. The pass runs
// on the final linear instruction stream, after the spill peephole and before
// layout, so the encoder only ever sees legal instructions.
//
// Rewrites (all specific to fixed-word RISC targets):
//
//   - absolute spill references  -> [spillBase + slot*16] (single flag-safe
//     access through the reserved spill-base register)
//   - other absolute references (constant pool) -> ld-imm address + [reg]
//   - base+index*scale addressing -> mov/shl/add flattening into one register
//   - displacements beyond the target's field -> folded into the address
//   - immediates beyond the target's field -> ld-imm splitting (16-bit chunks
//     composed with MOV/SHL/OR)
//
// Several rewrites insert flag-writing instructions (SHL/OR/ADD), which would
// corrupt a condition-flag value live across the insertion point. The pass
// therefore computes flag liveness over the stream and refuses — loudly — to
// insert a flag-writing sequence where flags are live. The register allocator
// cooperates so this cannot happen for the common cases: spill reloads go
// through the spill-base register (no flag writes), and rematerialization is
// restricted to constants that stay a single flag-safe MOV.

// buildImm returns the shortest MOV/SHL/OR sequence that materializes v into
// dst at operand size sz. Chunks are composed high to low with zero-extending
// OR (the executor zero-extends logical immediates), so no sign smear occurs;
// a leading chunk >= 0x8000 would sign-extend through MOV and is built as
// MOV #0 / OR #chunk instead.
func buildImm(dst code.Reg, v int64, sz uint8) []code.Instr {
	u := uint64(v)
	if sz == 4 {
		u &= 0xffff_ffff
	}
	// Highest non-zero 16-bit chunk.
	top := 0
	for k := int(sz)/2 - 1; k > 0; k-- {
		if (u>>(16*k))&0xffff != 0 {
			top = k
			break
		}
	}
	var out []code.Instr
	lead := (u >> (16 * top)) & 0xffff
	if lead < 0x8000 {
		mv := cInstr(code.MOV, sz)
		mv.Dst = dst
		mv.HasImm, mv.Imm = true, int64(lead)
		out = append(out, mv)
	} else {
		mv := cInstr(code.MOV, sz)
		mv.Dst = dst
		mv.HasImm, mv.Imm = true, 0
		or := cInstr(code.OR, sz)
		or.Dst, or.Src1 = dst, dst
		or.HasImm, or.Imm = true, int64(lead)
		out = append(out, mv, or)
	}
	for k := top - 1; k >= 0; k-- {
		sh := cInstr(code.SHL, sz)
		sh.Dst, sh.Src1 = dst, dst
		sh.HasImm, sh.Imm = true, 16
		out = append(out, sh)
		if c := (u >> (16 * k)) & 0xffff; c != 0 {
			or := cInstr(code.OR, sz)
			or.Dst, or.Src1 = dst, dst
			or.HasImm, or.Imm = true, int64(c)
			out = append(out, or)
		}
	}
	return out
}

// seqWritesFlags reports whether any instruction of the sequence writes the
// condition flags.
func seqWritesFlags(seq []code.Instr) bool {
	for i := range seq {
		if seq[i].Op.WritesFlags() {
			return true
		}
	}
	return false
}

type legalizer struct {
	tgt     *isa.Target
	sb      code.Reg // spill-base register (NoReg when unused)
	addrSz  uint8    // pointer width in bytes
	scratch []code.Reg
}

// spillWindow reports whether an absolute displacement addresses the spill
// slot window.
func spillWindow(disp int32) bool {
	return int64(disp) >= code.SpillBase && int64(disp) < code.ContextBase
}

// pick returns a reserved scratch register not referenced by the current
// instruction. The emitter's spill discipline keeps scratch values live only
// within one rewritten instruction group, and every scratch carrying a live
// value there appears as an operand of the instruction being legalized, so
// avoiding the instruction's own registers is sufficient.
func (lz *legalizer) pick(in *code.Instr) (code.Reg, error) {
	var buf [8]code.Reg
	used := in.IntRegs(buf[:0])
	for _, s := range lz.scratch {
		free := true
		for _, u := range used {
			if u == s {
				free = false
				break
			}
		}
		if free {
			return s, nil
		}
	}
	return 0, fmt.Errorf("no free scratch register for legalization")
}

// instr legalizes one instruction, returning its replacement sequence.
// flagLive reports whether condition flags are live immediately before the
// instruction; flag-writing helper sequences are refused there.
func (lz *legalizer) instr(in code.Instr, flagLive bool) ([]code.Instr, error) {
	tgt := lz.tgt
	var pre []code.Instr
	emit := func(seq []code.Instr) error {
		if flagLive && seqWritesFlags(seq) {
			return fmt.Errorf("flag-writing legalization sequence where flags are live")
		}
		pre = append(pre, seq...)
		return nil
	}

	if tgt.TwoAddress && in.Op.TwoAddress() && in.Src1 != in.Dst && in.Src1 != code.NoReg {
		return nil, fmt.Errorf("non-destructive ALU form survived to legalization")
	}

	if in.HasMem {
		m := &in.Mem
		// Base+index*scale: flatten into one address register. Integer
		// loads may use their own destination (dead on entry) as that
		// register; everything else takes a scratch.
		if m.Index != code.NoReg && !tgt.MemIndex {
			var a code.Reg
			if in.Op == code.LD && in.Dst != m.Base && in.Dst != m.Index && !in.Predicated() {
				a = in.Dst
			} else {
				s, err := lz.pick(&in)
				if err != nil {
					return nil, err
				}
				a = s
			}
			mv := cInstr(code.MOV, lz.addrSz)
			mv.Dst, mv.Src1 = a, m.Index
			seq := []code.Instr{mv}
			if m.Scale > 1 {
				sh := cInstr(code.SHL, lz.addrSz)
				sh.Dst, sh.Src1 = a, a
				sh.HasImm, sh.Imm = true, int64(log2u(m.Scale))
				seq = append(seq, sh)
			}
			if m.Base != code.NoReg {
				add := cInstr(code.ADD, lz.addrSz)
				add.Dst, add.Src1, add.Src2 = a, a, m.Base
				seq = append(seq, add)
			}
			if err := emit(seq); err != nil {
				return nil, err
			}
			m.Base, m.Index, m.Scale = a, code.NoReg, 1
		}
		// Absolute addressing: spill slots go through the reserved spill
		// base (flag-safe single access); pool constants materialize their
		// address into a register.
		if m.Base == code.NoReg && !tgt.MemAbsolute {
			addr := int64(m.Disp)
			rel := addr - code.SpillBase
			if spillWindow(m.Disp) && lz.sb != code.NoReg && code.DispOK(int32(rel), tgt) {
				m.Base, m.Disp = lz.sb, int32(rel)
			} else {
				var a code.Reg
				if in.Op == code.LD && !in.Predicated() {
					a = in.Dst
				} else {
					s, err := lz.pick(&in)
					if err != nil {
						return nil, err
					}
					a = s
				}
				if err := emit(buildImm(a, addr, lz.addrSz)); err != nil {
					return nil, err
				}
				m.Base, m.Disp = a, 0
			}
			m.Index, m.Scale = code.NoReg, 1
		}
		// Displacement beyond the target's field: fold into the address.
		if !code.DispOK(m.Disp, tgt) {
			var a code.Reg
			if in.Op == code.LD && in.Dst != m.Base && !in.Predicated() {
				a = in.Dst
			} else {
				s, err := lz.pick(&in)
				if err != nil {
					return nil, err
				}
				a = s
			}
			seq := buildImm(a, int64(m.Disp), lz.addrSz)
			add := cInstr(code.ADD, lz.addrSz)
			add.Dst, add.Src1, add.Src2 = a, a, m.Base
			seq = append(seq, add)
			if err := emit(seq); err != nil {
				return nil, err
			}
			m.Base, m.Disp = a, 0
		}
	}

	if in.HasImm && !code.ImmOK(in.Op, in.Imm, tgt) {
		// Sub-word operations only observe the low Sz bytes (the executor
		// masks immediates to the operand size), so their immediates
		// canonicalize to a sign-extended form that always fits.
		if in.Sz <= 2 {
			bits := uint(8 * in.Sz)
			masked := int64(uint64(in.Imm) & (1<<bits - 1))
			switch in.Op {
			case code.AND, code.OR, code.XOR, code.TEST:
				in.Imm = masked // logical immediates zero-extend
			default:
				in.Imm = masked << (64 - bits) >> (64 - bits)
			}
		} else if in.Op == code.MOV {
			// Wide constant: replace the MOV with a build sequence.
			seq := buildImm(in.Dst, in.Imm, in.Sz)
			if err := emit(seq); err != nil {
				return nil, err
			}
			return pre, nil
		} else {
			// Wide ALU/compare immediate: materialize into a scratch and
			// use the register form. The operation itself overwrites the
			// flags, so flags are never live here and the build sequence
			// is safe by construction (emit still checks).
			s, err := lz.pick(&in)
			if err != nil {
				return nil, err
			}
			if err := emit(buildImm(s, in.Imm, in.Sz)); err != nil {
				return nil, err
			}
			in.HasImm, in.Imm = false, 0
			in.Src2 = s
		}
	}

	return append(pre, in), nil
}

// legalizeTarget rewrites p in place so every instruction is encodable on the
// target, remapping branch targets across the insertions. It is a no-op for
// the default x86 target.
func legalizeTarget(p *code.Program, tgt *isa.Target, alloc *allocation) error {
	if tgt.Default() {
		return nil
	}
	n := len(p.Instrs)

	// Flag liveness immediately before each instruction, scanned backward.
	// Ops that both read and write (ADC/SBB) keep flags live before them.
	flagLive := make([]bool, n)
	live := false
	for i := n - 1; i >= 0; i-- {
		op := p.Instrs[i].Op
		if op.WritesFlags() {
			live = false
		}
		if op.ReadsFlags() {
			live = true
		}
		flagLive[i] = live
	}

	lz := &legalizer{
		tgt:     tgt,
		sb:      alloc.spillBase,
		addrSz:  uint8(p.FS.Width / 8),
		scratch: alloc.intScratch,
	}

	out := make([]code.Instr, 0, n+n/4)

	// Prologue: establish the spill-base register if any instruction
	// references the spill window. Flags are dead at entry.
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.HasMem && in.Mem.Base == code.NoReg && spillWindow(in.Mem.Disp) {
			if lz.sb == code.NoReg {
				return fmt.Errorf("legalize %s: spill references but no spill-base register reserved", tgt.Name)
			}
			out = append(out, buildImm(lz.sb, code.SpillBase, lz.addrSz)...)
			break
		}
	}

	newIdx := make([]int32, n)
	for i := range p.Instrs {
		newIdx[i] = int32(len(out))
		seq, err := lz.instr(p.Instrs[i], flagLive[i])
		if err != nil {
			return fmt.Errorf("legalize %s[%d] %s: %w", tgt.Name, i, code.FormatInstr(&p.Instrs[i]), err)
		}
		out = append(out, seq...)
	}
	// Inserted helper sequences contain no branches, so remapping every
	// branch in the output through the old-index table is exact.
	for i := range out {
		if op := out[i].Op; op == code.JCC || op == code.JMP {
			out[i].Target = newIdx[out[i].Target]
		}
	}
	p.Instrs = out
	return nil
}
