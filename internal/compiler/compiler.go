package compiler

import (
	"fmt"
	"testing"

	"compisa/internal/check"
	"compisa/internal/code"
	"compisa/internal/ir"
	"compisa/internal/isa"
)

// VerifyMode controls the post-compile conformance gate (internal/check).
type VerifyMode uint8

const (
	// VerifyDefault enables the gate under `go test` and disables it
	// otherwise: every test compilation is verified for free, while
	// production explorations opt in per call (the evaluation pipeline has
	// its own verification stage with fault accounting).
	VerifyDefault VerifyMode = iota
	// VerifyOn always runs the gate.
	VerifyOn
	// VerifyOff never runs the gate.
	VerifyOff
)

func (m VerifyMode) enabled() bool {
	switch m {
	case VerifyOn:
		return true
	case VerifyOff:
		return false
	}
	return testing.Testing()
}

// Options tunes the backend.
type Options struct {
	// IfConvert overrides the if-conversion heuristic; nil uses defaults.
	IfConvert *ifConvertOptions
	// DisableFolding turns off x86 memory-operand folding (for ablation).
	DisableFolding bool
	// CompactEncoding lays the program out under the hypothetical
	// from-scratch superset encoding (1-byte REXBC/predicate prefixes),
	// the tighter-encoding variant the paper sketches in Section V.A.
	CompactEncoding bool
	// Target selects the guest-ISA encoding backend the program is lowered
	// and laid out for: "" or "x86" for the default variable-length x86
	// encoding, "alpha64" for the fixed-length 32-bit RISC target. The
	// backend adapts lowering to the target's legality: memory-operand
	// folding off, load/store-only addressing, and fixed-width immediates
	// built by ld-imm splitting.
	Target string
	// FaultHook, if non-nil, is consulted before compilation; a non-nil
	// return aborts the compile with that error. The exploration layer
	// uses it to inject compile failures through the real pipeline so
	// recovery paths stay exercised.
	FaultHook func() error
	// Verify selects whether the emitted program is gated through the
	// internal/check conformance verifier before being returned.
	Verify VerifyMode
}

// stripNops removes NOP placeholders left by memory-operand folding so later
// passes (notably if-conversion's predicability check) see clean blocks.
func stripNops(mf *mFunc) {
	for _, b := range mf.blocks {
		k := 0
		for i := range b.instrs {
			if b.instrs[i].Op == code.NOP {
				continue
			}
			b.instrs[k] = b.instrs[i]
			k++
		}
		b.instrs = b.instrs[:k]
	}
}

// Compile lowers an IR region to machine code for the given composite
// feature set. The function is consumed: passes mutate it, so callers must
// regenerate the IR for each compilation (the workload generators are cheap
// and deterministic).
func Compile(f *ir.Func, fs isa.FeatureSet, opts Options) (*code.Program, error) {
	if err := fs.Validate(); err != nil {
		return nil, err
	}
	if opts.FaultHook != nil {
		if err := opts.FaultHook(); err != nil {
			return nil, fmt.Errorf("compile %s for %s: %w", f.Name, fs.ShortName(), err)
		}
	}
	tgt, err := isa.ResolveTarget(opts.Target)
	if err != nil {
		return nil, fmt.Errorf("compile %s: %w", f.Name, err)
	}
	if err := tgt.SupportsFS(fs); err != nil {
		return nil, fmt.Errorf("compile %s for %s: target %s: %w", f.Name, fs.ShortName(), tgt.Name, err)
	}
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("compile %s: %w", f.Name, err)
	}
	mf := newMFunc(f.Name)

	runVectorize(f, fs, &mf.stats)

	// Targets without memory operands never fold loads into ALU ops; the
	// legalization pass then only has to rewrite the remaining LD/ST forms.
	if err := runISel(f, fs, mf, opts.DisableFolding || !tgt.MemOperands); err != nil {
		return nil, fmt.Errorf("compile %s for %s: isel: %w", f.Name, fs.ShortName(), err)
	}

	stripNops(mf)

	ico := defaultIfConvertOptions()
	if opts.IfConvert != nil {
		ico = *opts.IfConvert
	}
	runIfConvert(mf, fs, ico, &mf.stats)

	runDCE(mf)

	if err := mf.verify(); err != nil {
		return nil, fmt.Errorf("compile %s for %s: %w", f.Name, fs.ShortName(), err)
	}

	alloc := runRegAlloc(mf, fs, tgt)

	prog, err := emitProgram(mf, fs, alloc, f.Name, opts.CompactEncoding, tgt)
	if err != nil {
		return nil, fmt.Errorf("compile %s for %s: %w", f.Name, fs.ShortName(), err)
	}
	if opts.Verify.enabled() {
		if err := check.Verify(prog); err != nil {
			return nil, fmt.Errorf("compile %s for %s: %w", f.Name, fs.ShortName(), err)
		}
	}
	return prog, nil
}
