package compiler

import (
	"sort"

	"compisa/internal/code"
	"compisa/internal/ir"
	"compisa/internal/isa"
)

// Location kinds after allocation.
type locKind uint8

const (
	locPhys locKind = iota
	locSpill
	locRemat
)

// loc is the allocated home of a virtual register.
type loc struct {
	kind locKind
	phys code.Reg // locPhys
	slot int32    // locSpill: slot index; address = SpillBase + slot*16
	imm  int64    // locRemat: constant to rematerialize
	fp   bool
}

// allocation is the register allocator's result.
type allocation struct {
	locs []loc
	// scratch registers reserved from the architectural file.
	intScratch []code.Reg
	fpScratch  []code.Reg
	// spillBase is the register reserved to hold the spill-window base
	// address on targets without absolute addressing (NoReg otherwise).
	// Spill references become single flag-safe [spillBase+disp] accesses,
	// which keeps reloads legal between a flag producer and its consumer.
	spillBase code.Reg
	numSlots  int32
	// vsz records the maximum operand size observed per FP vreg (4, 8, or
	// 16), which determines the spill access width.
	vsz []uint8
}

func slotAddr(slot int32) int32 { return code.SpillBase + slot*16 }

// intScratchCount returns how many integer registers are reserved for spill
// addressing at a given register depth; the worst-case rewrite (predicated
// store with spilled base, index, value, and predicate) needs three, but
// depth-8 feature sets never carry predication and get by with two.
func intScratchCount(depth int) int {
	if depth >= 16 {
		return 3
	}
	return 2
}

// runRegAlloc allocates machine virtual registers to the architectural file
// of the feature set using linear scan over block-extended live intervals.
// Registers with cheaper prefix encodings (r0-r7, then r8-r15) are
// preferred, matching the compiler strategy of Section IV. Unallocated
// intervals are spilled to the register context block, except single-def
// constants, which are rematerialized at their uses.
func runRegAlloc(f *mFunc, fs isa.FeatureSet, tgt *isa.Target) *allocation {
	n := f.nvregs
	a := &allocation{locs: make([]loc, n), vsz: make([]uint8, n), spillBase: code.NoReg}

	nScratch := intScratchCount(fs.Depth)
	for i := 0; i < nScratch; i++ {
		a.intScratch = append(a.intScratch, code.Reg(fs.Depth-1-i))
	}
	fpRegs := fs.FPRegs()
	a.fpScratch = []code.Reg{code.Reg(fpRegs - 1), code.Reg(fpRegs - 2)}
	intAvail := fs.Depth - nScratch
	fpAvail := fpRegs - 2
	if !tgt.MemAbsolute {
		a.spillBase = code.Reg(fs.Depth - 1 - nScratch)
		intAvail--
	}

	// Record FP operand sizes and remat candidates.
	defCnt := make([]int, n)
	constOf := make([]int64, n)
	isConst := make([]bool, n)
	for _, b := range f.blocks {
		for i := range b.instrs {
			in := &b.instrs[i]
			if d, fp := in.def(); d != noVR {
				defCnt[d]++
				// Rematerialization re-emits the constant MOV at each use,
				// which may sit between a flag producer and its consumer, so
				// on narrow-immediate targets only constants that stay a
				// single flag-safe MOV (no ld-imm splitting) qualify.
				isConst[d] = in.Op == code.MOV && in.HasImm &&
					code.ImmOK(code.MOV, in.Imm, tgt)
				constOf[d] = in.Imm
				if fp && in.Sz > a.vsz[d] {
					a.vsz[d] = in.Sz
				}
			}
			in.uses(func(r vreg, fp bool) {
				if fp && in.Sz > a.vsz[r] {
					a.vsz[r] = in.Sz
				}
			})
		}
	}

	// Live intervals from block-extended liveness.
	lv := mLiveness(f)
	type interval struct {
		v        vreg
		from, to int
	}
	from := make([]int, n)
	to := make([]int, n)
	for i := range from {
		from[i] = -1
	}
	touch := func(v vreg, pos int) {
		if from[v] == -1 || pos < from[v] {
			from[v] = pos
		}
		if pos > to[v] {
			to[v] = pos
		}
	}
	pos := 0
	for _, b := range f.blocks {
		blockStart := pos
		lv.in[b.id].ForEach(func(v ir.VReg) { touch(vreg(v), blockStart) })
		for i := range b.instrs {
			in := &b.instrs[i]
			in.uses(func(r vreg, _ bool) { touch(r, pos) })
			if d, _ := in.def(); d != noVR {
				touch(d, pos)
			}
			pos++
		}
		if b.term.Kind == termRet && b.term.Ret != noVR {
			touch(b.term.Ret, pos)
		}
		pos++ // terminator position
		blockEnd := pos - 1
		lv.out[b.id].ForEach(func(v ir.VReg) { touch(vreg(v), blockEnd) })
	}

	var ints, fps []interval
	for v := 0; v < n; v++ {
		if from[v] == -1 {
			continue
		}
		iv := interval{v: vreg(v), from: from[v], to: to[v]}
		if f.isFP[v] {
			fps = append(fps, iv)
		} else {
			ints = append(ints, iv)
		}
	}

	scan := func(ivs []interval, avail int, fp bool) {
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].from != ivs[j].from {
				return ivs[i].from < ivs[j].from
			}
			return ivs[i].v < ivs[j].v
		})
		inUse := make([]vreg, avail) // phys -> owning vreg (noVR = free)
		for i := range inUse {
			inUse[i] = noVR
		}
		type active struct {
			v    vreg
			to   int
			phys int
		}
		var act []active
		spill := func(v vreg) {
			if isConst[v] && defCnt[v] == 1 {
				a.locs[v] = loc{kind: locRemat, imm: constOf[v], fp: fp}
				return
			}
			a.locs[v] = loc{kind: locSpill, slot: a.numSlots, fp: fp}
			a.numSlots++
		}
		for _, iv := range ivs {
			// Expire.
			k := 0
			for _, ac := range act {
				if ac.to < iv.from {
					inUse[ac.phys] = noVR
				} else {
					act[k] = ac
					k++
				}
			}
			act = act[:k]
			// Lowest free register (cheapest prefix encoding first).
			phys := -1
			for r := 0; r < avail; r++ {
				if inUse[r] == noVR {
					phys = r
					break
				}
			}
			if phys >= 0 {
				inUse[phys] = iv.v
				a.locs[iv.v] = loc{kind: locPhys, phys: code.Reg(phys), fp: fp}
				act = append(act, active{v: iv.v, to: iv.to, phys: phys})
				continue
			}
			// Spill the interval that ends last.
			victim := -1
			worst := iv.to
			for i, ac := range act {
				if ac.to > worst {
					worst = ac.to
					victim = i
				}
			}
			if victim < 0 {
				spill(iv.v)
				continue
			}
			ac := act[victim]
			spill(ac.v)
			inUse[ac.phys] = iv.v
			a.locs[iv.v] = loc{kind: locPhys, phys: code.Reg(ac.phys), fp: fp}
			act[victim] = active{v: iv.v, to: iv.to, phys: ac.phys}
		}
	}
	scan(ints, intAvail, false)
	scan(fps, fpAvail, true)
	return a
}

// liveSets holds per-block live-in/out over machine vregs.
type liveSets struct {
	in, out []ir.BitSet
}

// mLiveness computes backward liveness over the machine CFG.
func mLiveness(f *mFunc) *liveSets {
	f.computeCFG()
	n := f.nvregs
	nb := len(f.blocks)
	lv := &liveSets{in: make([]ir.BitSet, nb), out: make([]ir.BitSet, nb)}
	gen := make([]ir.BitSet, nb)
	kill := make([]ir.BitSet, nb)
	for _, b := range f.blocks {
		g, k := ir.NewBitSet(n), ir.NewBitSet(n)
		for i := range b.instrs {
			in := &b.instrs[i]
			in.uses(func(r vreg, _ bool) {
				if !k.Has(ir.VReg(r)) {
					g.Set(ir.VReg(r))
				}
			})
			if d, _ := in.def(); d != noVR {
				// Predicated and CMOV defs merge, so they do not
				// kill the incoming value.
				if !b.instrs[i].predicated() && in.Op != code.CMOVCC {
					k.Set(ir.VReg(d))
				}
			}
		}
		if b.term.Kind == termRet && b.term.Ret != noVR {
			if !k.Has(ir.VReg(b.term.Ret)) {
				g.Set(ir.VReg(b.term.Ret))
			}
		}
		gen[b.id], kill[b.id] = g, k
		lv.in[b.id] = ir.NewBitSet(n)
		lv.out[b.id] = ir.NewBitSet(n)
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.blocks) - 1; i >= 0; i-- {
			b := f.blocks[i]
			out := lv.out[b.id]
			for _, s := range b.succs {
				if out.OrInto(lv.in[s.id]) {
					changed = true
				}
			}
			tmp := ir.NewBitSet(n)
			tmp.Copy(out)
			for j := range tmp {
				tmp[j] &^= kill[b.id][j]
				tmp[j] |= gen[b.id][j]
			}
			if lv.in[b.id].OrInto(tmp) {
				changed = true
			}
		}
	}
	return lv
}

// runDCE removes instructions whose results are never used and which have no
// side effects, iterating to a fixed point. It cleans up constants fully
// folded into immediates and moves orphaned by other passes.
func runDCE(f *mFunc) {
	for {
		used := make([]bool, f.nvregs)
		mark := func(r vreg, _ bool) { used[r] = true }
		for _, b := range f.blocks {
			for i := range b.instrs {
				b.instrs[i].uses(mark)
			}
			if b.term.Kind == termRet && b.term.Ret != noVR {
				used[b.term.Ret] = true
			}
		}
		removed := false
		for _, b := range f.blocks {
			k := 0
			for i := range b.instrs {
				in := b.instrs[i]
				d, _ := in.def()
				if in.Op == code.NOP || (d != noVR && !used[d] && !in.hasSideEffect()) {
					removed = true
					continue
				}
				b.instrs[k] = in
				k++
			}
			b.instrs = b.instrs[:k]
		}
		if !removed {
			return
		}
	}
}
