// Package compiler implements the backend that lowers IR regions to
// superset-ISA machine code for a chosen composite feature set. The pipeline
// mirrors the paper's LLVM-based toolchain (Section IV):
//
//	vectorize -> instruction selection -> if-conversion -> dead-code
//	elimination -> register allocation -> emission/layout
//
// Instruction selection chooses between full-x86 memory-operand forms and
// microx86 load-compute-store sequences, expands 64-bit operations into
// 32-bit pairs on narrow targets, and fuses compares into branches. The
// machine-level if-converter implements diamond/triangle/simple patterns
// with an LLVM-style profitability heuristic. The linear-scan register
// allocator is parameterized by the feature set's register depth, spills
// through a register context block, rematerializes constants, and
// prioritizes registers with cheap prefix encodings.
package compiler

import (
	"fmt"

	"compisa/internal/code"
)

// vreg is a machine-level virtual register; values < 0 mean "none".
type vreg int32

const noVR vreg = -1

// mInstr is a machine instruction over virtual registers. It mirrors
// code.Instr but with unbounded register operands; branches live in block
// terminators, not in the instruction list. Register allocation and emission
// turn machine IR into code.Instr.
type mInstr struct {
	Op     code.Op
	Sz     uint8
	Dst    vreg
	Src1   vreg
	Src2   vreg
	Imm    int64
	HasImm bool
	HasMem bool
	// Memory operand over virtual registers. MemBase == noVR denotes
	// absolute (disp32-only) addressing, used for spill slots in the
	// register context block and for the constant pool.
	MemBase   vreg
	MemIndex  vreg
	Scale     uint8
	Disp      int32
	CC        code.CC
	Pred      vreg
	PredSense bool
	// KeepFlags marks instructions emitted purely (or additionally) as
	// flag producers for an adjacent consumer; dead-code elimination must
	// not remove them even when their register result is unused.
	KeepFlags bool
}

func (in *mInstr) predicated() bool { return in.Pred != noVR }

// uses calls f for every register the instruction reads, with its class.
func (in *mInstr) uses(f func(r vreg, fp bool)) {
	switch in.Op {
	case code.CVTIF:
		if in.Src1 != noVR {
			f(in.Src1, false)
		}
	case code.FST, code.VST, code.FMOV, code.FADD, code.FSUB, code.FMUL,
		code.FDIV, code.FCMP, code.CVTFI, code.VADDF, code.VSUBF, code.VMULF,
		code.VADDI, code.VSUBI, code.VMULI, code.VSPLAT, code.VRSUM:
		if in.Src1 != noVR {
			f(in.Src1, true)
		}
		if in.Src2 != noVR {
			f(in.Src2, true)
		}
	default:
		if in.Src1 != noVR {
			f(in.Src1, false)
		}
		if in.Src2 != noVR {
			f(in.Src2, false)
		}
	}
	if in.HasMem {
		if in.MemBase != noVR {
			f(in.MemBase, false)
		}
		if in.MemIndex != noVR {
			f(in.MemIndex, false)
		}
	}
	if in.Pred != noVR {
		f(in.Pred, false)
	}
	// Predicated instructions and CMOV merge with the prior destination
	// value, so they read their destination.
	if in.predicated() || in.Op == code.CMOVCC {
		if d, fp := in.def(); d != noVR {
			f(d, fp)
		}
	}
}

// def returns the written register and its class, or noVR.
func (in *mInstr) def() (vreg, bool) {
	switch in.Op {
	case code.ST, code.FST, code.VST, code.CMP, code.TEST, code.NOP, code.FCMP:
		return noVR, false
	}
	return in.Dst, in.Op.IsFP()
}

// hasSideEffect reports whether DCE must keep the instruction regardless of
// its result's liveness.
func (in *mInstr) hasSideEffect() bool {
	switch in.Op {
	case code.ST, code.FST, code.VST:
		return true
	case code.CMP, code.TEST, code.FCMP:
		return true // pure flag producers; always adjacent to a consumer
	}
	return in.KeepFlags
}

// termKind discriminates block terminators.
type termKind uint8

const (
	termNone termKind = iota // fallthrough to the next block in layout order
	termJmp
	termJcc
	termRet
)

// mTerm is a block terminator. For termJcc the block's instruction list ends
// with the flag-producing compare; Taken is the target when CC holds and
// Fall otherwise.
type mTerm struct {
	Kind  termKind
	CC    code.CC
	Taken *mBlock
	Fall  *mBlock // nil means fallthrough to next block in layout order
	Ret   vreg    // termRet: register holding the region checksum
	Prob  float32 // profile probability the JCC is taken
}

// mBlock is a machine basic block.
type mBlock struct {
	id     int
	name   string
	instrs []mInstr
	term   mTerm

	succs []*mBlock
	preds []*mBlock
}

// mFunc is a machine-level function. Blocks are laid out in slice order.
type mFunc struct {
	name   string
	blocks []*mBlock
	entry  *mBlock
	nvregs int
	isFP   []bool // register class per vreg
	stats  code.CompileStats
	// pool is the constant pool: 4- or 8-byte constants addressed
	// absolutely (FP immediates).
	pool []code.PoolConst
}

func newMFunc(name string) *mFunc { return &mFunc{name: name} }

func (f *mFunc) newBlock(name string) *mBlock {
	b := &mBlock{id: len(f.blocks), name: name}
	f.blocks = append(f.blocks, b)
	if f.entry == nil {
		f.entry = b
	}
	return b
}

func (f *mFunc) newVReg(fp bool) vreg {
	v := vreg(f.nvregs)
	f.nvregs++
	f.isFP = append(f.isFP, fp)
	return v
}

// next returns the layout successor of b, or nil.
func (f *mFunc) next(b *mBlock) *mBlock {
	for i, blk := range f.blocks {
		if blk == b {
			if i+1 < len(f.blocks) {
				return f.blocks[i+1]
			}
			return nil
		}
	}
	return nil
}

// fallTarget resolves a terminator's fallthrough block.
func (f *mFunc) fallTarget(b *mBlock) *mBlock {
	if b.term.Fall != nil {
		return b.term.Fall
	}
	return f.next(b)
}

// computeCFG rebuilds successor/predecessor lists.
func (f *mFunc) computeCFG() {
	for _, b := range f.blocks {
		b.succs = b.succs[:0]
		b.preds = b.preds[:0]
	}
	for _, b := range f.blocks {
		switch b.term.Kind {
		case termNone:
			if n := f.fallTarget(b); n != nil {
				b.succs = append(b.succs, n)
			}
		case termJmp:
			b.succs = append(b.succs, b.term.Taken)
		case termJcc:
			b.succs = append(b.succs, b.term.Taken)
			if n := f.fallTarget(b); n != nil {
				b.succs = append(b.succs, n)
			}
		case termRet:
		}
	}
	for _, b := range f.blocks {
		for _, s := range b.succs {
			s.preds = append(s.preds, b)
		}
	}
}

// verify checks machine-IR structural invariants before emission.
func (f *mFunc) verify() error {
	for _, b := range f.blocks {
		for i := range b.instrs {
			in := &b.instrs[i]
			if in.Op.IsBranch() {
				return fmt.Errorf("%s/%s[%d]: branch op in instruction list", f.name, b.name, i)
			}
			if isTwoAddressALU(in.Op) && in.Dst != in.Src1 {
				return fmt.Errorf("%s/%s[%d]: %v violates two-address form (dst=%d src1=%d)",
					f.name, b.name, i, in.Op, in.Dst, in.Src1)
			}
		}
		if b.term.Kind == termJcc && b.term.Taken == nil {
			return fmt.Errorf("%s/%s: jcc without target", f.name, b.name)
		}
	}
	if len(f.blocks) == 0 {
		return fmt.Errorf("%s: empty function", f.name)
	}
	return nil
}

// isTwoAddressALU reports whether the op requires Dst == Src1, matching
// the two-address instruction format both encoders share.
func isTwoAddressALU(op code.Op) bool { return op.TwoAddress() }
