package compiler

import (
	"fmt"

	"compisa/internal/check"
	"compisa/internal/code"
	"compisa/internal/encoding"
	"compisa/internal/isa"
)

// scratchPool hands out the reserved scratch registers of one class during
// the rewrite of a single instruction.
type scratchPool struct {
	free []code.Reg
}

func newScratchPool(regs []code.Reg) *scratchPool {
	f := make([]code.Reg, len(regs))
	copy(f, regs)
	return &scratchPool{free: f}
}

func (p *scratchPool) get() (code.Reg, error) {
	if len(p.free) == 0 {
		return 0, fmt.Errorf("compiler: out of scratch registers during spill rewrite")
	}
	r := p.free[0]
	p.free = p.free[1:]
	return r, nil
}

func (p *scratchPool) put(r code.Reg) { p.free = append(p.free, r) }

type fixup struct {
	idx    int
	target *mBlock
}

type emitter struct {
	f     *mFunc
	fs    isa.FeatureSet
	alloc *allocation
	out   []code.Instr
	fix   []fixup
	start map[*mBlock]int
	stats *code.CompileStats
}

func (e *emitter) push(ci code.Instr) { e.out = append(e.out, ci) }

// cInstr returns a code.Instr skeleton with register fields cleared.
func cInstr(op code.Op, sz uint8) code.Instr {
	return code.Instr{Op: op, Sz: sz, Dst: code.NoReg, Src1: code.NoReg,
		Src2: code.NoReg, Pred: code.NoReg, Mem: code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1}}
}

func (e *emitter) intSpillSz() uint8 { return uint8(e.fs.Width / 8) }

// refillInt loads a spilled or rematerialized integer vreg into a scratch.
func (e *emitter) refillInt(l loc, pool *scratchPool) (code.Reg, error) {
	s, err := pool.get()
	if err != nil {
		return 0, err
	}
	if l.kind == locRemat {
		mv := cInstr(code.MOV, e.intSpillSz())
		mv.Dst = s
		mv.HasImm, mv.Imm = true, l.imm
		e.push(mv)
		e.stats.Remats++
		return s, nil
	}
	ld := cInstr(code.LD, e.intSpillSz())
	ld.Dst = s
	ld.HasMem = true
	ld.Mem = code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1, Disp: slotAddr(l.slot)}
	e.push(ld)
	e.stats.RefillLoads++
	return s, nil
}

func (e *emitter) fpOps(sz uint8) (ldOp, stOp code.Op) {
	if sz == 16 {
		return code.VLD, code.VST
	}
	return code.FLD, code.FST
}

func (e *emitter) refillFP(l loc, sz uint8, pool *scratchPool) (code.Reg, error) {
	s, err := pool.get()
	if err != nil {
		return 0, err
	}
	ldOp, _ := e.fpOps(sz)
	ld := cInstr(ldOp, sz)
	ld.Dst = s
	ld.HasMem = true
	ld.Mem = code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1, Disp: slotAddr(l.slot)}
	e.push(ld)
	e.stats.RefillLoads++
	return s, nil
}

func (e *emitter) spillStoreInt(r code.Reg, l loc) {
	st := cInstr(code.ST, e.intSpillSz())
	st.Src1 = r
	st.HasMem = true
	st.Mem = code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1, Disp: slotAddr(l.slot)}
	e.push(st)
	e.stats.SpillStores++
}

func (e *emitter) spillStoreFP(r code.Reg, l loc, sz uint8) {
	_, stOp := e.fpOps(sz)
	st := cInstr(stOp, sz)
	st.Src1 = r
	st.HasMem = true
	st.Mem = code.Mem{Base: code.NoReg, Index: code.NoReg, Scale: 1, Disp: slotAddr(l.slot)}
	e.push(st)
	e.stats.SpillStores++
}

// emitInstr rewrites one machine instruction, inserting refills/stores
// around it for spilled operands.
func (e *emitter) emitInstr(in *mInstr) error {
	ipool := newScratchPool(e.alloc.intScratch)
	fpool := newScratchPool(e.alloc.fpScratch)
	locOf := func(v vreg) loc { return e.alloc.locs[v] }

	// A remat-located def means this is the single MOV-imm defining a
	// rematerialized constant: drop it, uses re-materialize on demand.
	if d, _ := in.def(); d != noVR && locOf(d).kind == locRemat {
		return nil
	}

	ci := cInstr(in.Op, in.Sz)
	ci.Imm, ci.HasImm = in.Imm, in.HasImm
	ci.CC = in.CC

	// Per-instruction cache so the same spilled vreg resolves to one
	// scratch (e.g. TEST v, v).
	resolved := map[vreg]code.Reg{}
	mapInt := func(v vreg) (code.Reg, error) {
		if r, ok := resolved[v]; ok {
			return r, nil
		}
		l := locOf(v)
		if l.kind == locPhys {
			resolved[v] = l.phys
			return l.phys, nil
		}
		r, err := e.refillInt(l, ipool)
		if err != nil {
			return 0, err
		}
		resolved[v] = r
		return r, nil
	}
	mapFP := func(v vreg) (code.Reg, error) {
		if r, ok := resolved[v]; ok {
			return r, nil
		}
		l := locOf(v)
		if l.kind == locPhys {
			resolved[v] = l.phys
			return l.phys, nil
		}
		r, err := e.refillFP(l, e.alloc.vsz[v], fpool)
		if err != nil {
			return 0, err
		}
		resolved[v] = r
		return r, nil
	}

	// 1. Memory operand: fold a spilled index into a scratch base so the
	// worst case needs one held scratch.
	if in.HasMem {
		ci.HasMem = true
		ci.Mem.Scale = in.Scale
		ci.Mem.Disp = in.Disp
		baseSpilled := in.MemBase != noVR && locOf(in.MemBase).kind != locPhys
		idxSpilled := in.MemIndex != noVR && locOf(in.MemIndex).kind != locPhys
		switch {
		case idxSpilled:
			// Materialize base + index*scale into one scratch.
			sI, err := e.refillInt(locOf(in.MemIndex), ipool)
			if err != nil {
				return err
			}
			if in.Scale > 1 {
				sh := cInstr(code.SHL, e.intSpillSz())
				sh.Dst, sh.Src1 = sI, sI
				sh.HasImm, sh.Imm = true, int64(log2u(in.Scale))
				e.push(sh)
			}
			if in.MemBase != noVR {
				var bReg code.Reg
				if baseSpilled {
					sB, err := e.refillInt(locOf(in.MemBase), ipool)
					if err != nil {
						return err
					}
					bReg = sB
					add := cInstr(code.ADD, e.intSpillSz())
					add.Dst, add.Src1, add.Src2 = sI, sI, bReg
					e.push(add)
					ipool.put(sB)
				} else {
					add := cInstr(code.ADD, e.intSpillSz())
					add.Dst, add.Src1, add.Src2 = sI, sI, locOf(in.MemBase).phys
					e.push(add)
				}
			}
			ci.Mem.Base, ci.Mem.Index, ci.Mem.Scale = sI, code.NoReg, 1
		case baseSpilled:
			sB, err := e.refillInt(locOf(in.MemBase), ipool)
			if err != nil {
				return err
			}
			ci.Mem.Base = sB
			if in.MemIndex != noVR {
				ci.Mem.Index = locOf(in.MemIndex).phys
			}
		default:
			if in.MemBase != noVR {
				ci.Mem.Base = locOf(in.MemBase).phys
			}
			if in.MemIndex != noVR {
				ci.Mem.Index = locOf(in.MemIndex).phys
			}
		}
	}

	// 2. Predicate register.
	if in.Pred != noVR {
		p, err := mapInt(in.Pred)
		if err != nil {
			return err
		}
		ci.Pred, ci.PredSense = p, in.PredSense
	}

	// 3. Source registers by class.
	fpSrc := func() bool {
		switch in.Op {
		case code.FST, code.VST, code.FMOV, code.FADD, code.FSUB, code.FMUL,
			code.FDIV, code.FCMP, code.CVTFI, code.VADDF, code.VSUBF,
			code.VMULF, code.VADDI, code.VSUBI, code.VMULI, code.VSPLAT, code.VRSUM:
			return true
		}
		return false
	}()
	mapSrc := func(v vreg) (code.Reg, error) {
		if fpSrc {
			return mapFP(v)
		}
		return mapInt(v)
	}
	if in.Src1 != noVR {
		r, err := mapSrc(in.Src1)
		if err != nil {
			return err
		}
		ci.Src1 = r
	}
	if in.Src2 != noVR {
		r, err := mapSrc(in.Src2)
		if err != nil {
			return err
		}
		ci.Src2 = r
	}

	// 4. Destination.
	d, dFP := in.def()
	var dLoc loc
	var dScratch code.Reg
	spillDef := false
	if d != noVR {
		dLoc = locOf(d)
		if dLoc.kind == locPhys {
			ci.Dst = dLoc.phys
		} else {
			spillDef = true
			// Reads-modifies-writes need the old value loaded first;
			// two-address ops already resolved Src1 == Dst to the
			// same scratch via the per-instruction cache.
			rmw := isTwoAddressALU(in.Op) || in.Op == code.CMOVCC || in.predicated()
			if r, ok := resolved[d]; ok && isTwoAddressALU(in.Op) {
				dScratch = r // Src1 == Dst, already refilled
			} else if rmw {
				var err error
				if dFP {
					dScratch, err = e.refillFP(dLoc, e.alloc.vsz[d], fpool)
				} else {
					dScratch, err = e.refillInt(dLoc, ipool)
				}
				if err != nil {
					return err
				}
			} else {
				var err error
				if dFP {
					dScratch, err = fpool.get()
				} else {
					dScratch, err = ipool.get()
				}
				if err != nil {
					return err
				}
			}
			ci.Dst = dScratch
			if isTwoAddressALU(in.Op) {
				ci.Src1 = dScratch
			}
		}
	}

	e.push(ci)

	if spillDef {
		if dFP {
			e.spillStoreFP(dScratch, dLoc, e.alloc.vsz[d])
		} else {
			e.spillStoreInt(dScratch, dLoc)
		}
	}
	return nil
}

func log2u(s uint8) int {
	n := 0
	for s > 1 {
		s >>= 1
		n++
	}
	return n
}

// emitProgram lowers the allocated machine function into final code with
// layout.
func emitProgram(f *mFunc, fs isa.FeatureSet, alloc *allocation, name string, compact bool, tgt *isa.Target) (*code.Program, error) {
	e := &emitter{f: f, fs: fs, alloc: alloc, start: map[*mBlock]int{}, stats: &f.stats}
	for bi, b := range f.blocks {
		e.start[b] = len(e.out)
		for i := range b.instrs {
			if b.instrs[i].Op == code.NOP {
				continue
			}
			if err := e.emitInstr(&b.instrs[i]); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", f.name, b.name, err)
			}
		}
		var next *mBlock
		if bi+1 < len(f.blocks) {
			next = f.blocks[bi+1]
		}
		switch b.term.Kind {
		case termJcc:
			j := cInstr(code.JCC, 0)
			j.CC = b.term.CC
			j.TakenProb = b.term.Prob
			e.fix = append(e.fix, fixup{idx: len(e.out), target: b.term.Taken})
			e.push(j)
			fall := f.fallTarget(b)
			if fall != nil && fall != next {
				jm := cInstr(code.JMP, 0)
				e.fix = append(e.fix, fixup{idx: len(e.out), target: fall})
				e.push(jm)
			}
		case termJmp:
			if b.term.Taken != next {
				jm := cInstr(code.JMP, 0)
				e.fix = append(e.fix, fixup{idx: len(e.out), target: b.term.Taken})
				e.push(jm)
			}
		case termRet:
			r := cInstr(code.RET, 0)
			if v := b.term.Ret; v != noVR {
				l := alloc.locs[v]
				if l.kind == locPhys {
					r.Src1 = l.phys
				} else {
					pool := newScratchPool(alloc.intScratch)
					s, err := e.refillInt(l, pool)
					if err != nil {
						return nil, err
					}
					r.Src1 = s
				}
			}
			e.push(r)
		case termNone:
			// fallthrough to next block
		}
	}
	for _, fx := range e.fix {
		tgt, ok := e.start[fx.target]
		if !ok {
			return nil, fmt.Errorf("%s: branch to removed block %s", f.name, fx.target.name)
		}
		e.out[fx.idx].Target = int32(tgt)
	}
	p := &code.Program{Name: name, FS: fs, Target: tgt.ProgTarget(), Instrs: e.out,
		Pool: f.pool, CompactEncoding: compact, Stats: f.stats}
	// Peephole: the per-instruction spill discipline emits `st s -> slot`
	// after every spilled def and `ld s <- slot` before every spilled use,
	// so back-to-back def/use of one vreg leaves a same-register
	// store/reload pair behind. The scanner is the verifier's own, so the
	// peephole removes exactly what the spillpair rule would flag and
	// clean output stays finding-free by construction.
	p.Stats.ElidedReloads = check.ElideRedundantReloads(p)
	// Target legalization runs after the peephole (which matches the
	// absolute-addressed spill pattern emitted above) and before layout, so
	// the encoder only ever sees target-legal instructions.
	if err := legalizeTarget(p, tgt, alloc); err != nil {
		return nil, fmt.Errorf("%s: %w", f.name, err)
	}
	if err := encoding.Layout(p, code.CodeBase); err != nil {
		return nil, err
	}
	p.Stats.StaticInstrs = len(p.Instrs)
	p.Stats.CodeBytes = p.Size
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
