package compiler

import (
	"compisa/internal/code"
	"compisa/internal/ir"
	"compisa/internal/isa"
)

// runVectorize widens every annotated, provably element-wise counted loop to
// 128-bit SSE when the target feature set implements SIMD, and counts the
// loops left scalar otherwise. Cores without SIMD units "execute a
// precompiled scalarized version" of vector code (Section III), which is
// exactly the scalar loop the generator wrote.
//
// A loop qualifies when:
//   - its body block carries a VecLoopInfo annotation,
//   - every load/store indexes memory as base + IndVar*4 with scalar
//     F32/I32 element type,
//   - arithmetic is element-wise F32 (add/sub/mul) or I32 (add/sub/mul),
//   - every value defined in the body (other than the induction variable)
//     is defined before any body use (no loop-carried dependences), and
//   - loop-invariant F32 operands can be broadcast with a splat in the
//     preheader.
//
// The generator guarantees the trip count is a multiple of the lane count.
func runVectorize(f *ir.Func, fs isa.FeatureSet, stats *code.CompileStats) {
	f.ComputeCFG()
	for _, body := range f.Blocks {
		if body.VecLoop == nil {
			continue
		}
		if !fs.HasSIMD() {
			stats.ScalarLoops++
			continue
		}
		if vectorizeLoop(f, body) {
			stats.VectorLoops++
		} else {
			stats.ScalarLoops++
		}
	}
}

func vectorizeLoop(f *ir.Func, body *ir.Block) bool {
	info := body.VecLoop
	iv := info.IndVar

	// The body must end with an unconditional branch back to the header.
	term := body.Terminator()
	if term == nil || term.Op != ir.Br {
		return false
	}
	header := term.Succs[0]

	// Find the preheader: the header predecessor that is not the body.
	var preheader *ir.Block
	for _, p := range header.Preds() {
		if p != body {
			preheader = p
		}
	}
	if preheader == nil {
		return false
	}

	// Verify and classify the body.
	defined := map[ir.VReg]bool{iv: true}
	var widen []int // instruction indices to widen
	splats := map[ir.VReg]bool{}
	var splatOrder []ir.VReg // discovery order: splat insertion must not
	// depend on map iteration, or recompiles emit different programs
	addSplat := func(v ir.VReg) {
		if !splats[v] {
			splats[v] = true
			splatOrder = append(splatOrder, v)
		}
	}
	var stepConst *ir.Instr // the Const 1 feeding the induction update
	vecType := func(t ir.Type) ir.Type {
		if t == ir.F32 {
			return ir.V4F32
		}
		return ir.V4I32
	}
	for idx := range body.Instrs {
		in := &body.Instrs[idx]
		switch in.Op {
		case ir.Br:
			continue
		case ir.Const:
			defined[in.Dst] = true
			continue
		case ir.Load, ir.Store:
			t := in.Type
			if (t != ir.F32 && t != ir.I32) || in.MemSize != 0 {
				return false
			}
			if in.Mem.Index != iv || in.Mem.Scale != 4 {
				return false
			}
			if in.Op == ir.Store && !defined[in.A] && f.TypeOf(in.A) == ir.F32 {
				addSplat(in.A)
			}
			if in.Op == ir.Load {
				defined[in.Dst] = true
			}
			widen = append(widen, idx)
			continue
		case ir.Add, ir.Sub, ir.Mul, ir.FAdd, ir.FSub, ir.FMul:
			// Induction update: iv = iv + 1.
			if in.Op == ir.Add && in.Dst == iv && in.A == iv {
				c := findBodyConstDef(body, idx, in.B)
				if c == nil || c.Imm != 1 {
					return false
				}
				stepConst = c
				continue
			}
			t := in.Type
			if t != ir.F32 && t != ir.I32 {
				return false
			}
			if in.Dst == iv || in.A == iv || in.B == iv {
				return false
			}
			for _, src := range []ir.VReg{in.A, in.B} {
				if defined[src] {
					continue
				}
				if f.TypeOf(src) == ir.F32 {
					addSplat(src)
				} else {
					return false // loop-invariant integers are not splattable
				}
			}
			// Loop-carried scalar dependence (e.g. a reduction):
			// dst already live into the loop -> not element-wise.
			if !defined[in.Dst] && usedBefore(body, idx, in.Dst) {
				return false
			}
			if in.Dst == in.A && !defined[in.Dst] {
				return false // accumulator pattern acc = acc op x
			}
			defined[in.Dst] = true
			widen = append(widen, idx)
			continue
		default:
			return false
		}
	}
	if stepConst == nil {
		return false
	}

	// Commit the transformation.
	stepConst.Imm = int64(info.Lanes)
	splatOf := map[ir.VReg]ir.VReg{}
	// Insert splats at the end of the preheader, before its terminator.
	for _, src := range splatOrder {
		v := f.NewVReg(ir.V4F32)
		sp := ir.Instr{Op: ir.Splat, Type: ir.V4F32, Dst: v, A: src,
			B: ir.NoReg, C: ir.NoReg, Mem: ir.MemRef{Base: ir.NoReg, Index: ir.NoReg}}
		pos := len(preheader.Instrs) - 1
		preheader.Instrs = append(preheader.Instrs, ir.Instr{})
		copy(preheader.Instrs[pos+1:], preheader.Instrs[pos:])
		preheader.Instrs[pos] = sp
		splatOf[src] = v
	}
	retype := map[ir.VReg]bool{}
	for _, idx := range widen {
		in := &body.Instrs[idx]
		in.Type = vecType(in.Type)
		for _, op := range []*ir.VReg{&in.A, &in.B} {
			if v, ok := splatOf[*op]; ok {
				*op = v
			}
		}
		if d := in.Def(); d != ir.NoReg {
			retype[d] = true
		}
		if in.Op == ir.Store && retype[in.A] {
			// store value already widened via its def
		}
	}
	for v := range retype {
		f.SetTypeOf(v, vecType(f.TypeOf(v)))
	}
	return true
}

// findBodyConstDef returns the Const instruction in body defining v before
// position pos, or nil.
func findBodyConstDef(body *ir.Block, pos int, v ir.VReg) *ir.Instr {
	for i := pos - 1; i >= 0; i-- {
		in := &body.Instrs[i]
		if in.Def() == v {
			if in.Op == ir.Const {
				return in
			}
			return nil
		}
	}
	return nil
}

// usedBefore reports whether v is read in body before position pos.
func usedBefore(body *ir.Block, pos int, v ir.VReg) bool {
	var us []ir.VReg
	for i := 0; i < pos; i++ {
		us = body.Instrs[i].Uses(us[:0])
		for _, u := range us {
			if u == v {
				return true
			}
		}
	}
	return false
}
