package compiler

import (
	"fmt"
	"math"

	"compisa/internal/code"
	"compisa/internal/ir"
	"compisa/internal/isa"
)

func f32bits(f float32) uint32 { return math.Float32bits(f) }
func f64bits(f float64) uint64 { return math.Float64bits(f) }

// minstr returns an mInstr with all register fields cleared to noVR.
func minstr(op code.Op, sz uint8) mInstr {
	return mInstr{Op: op, Sz: sz, Dst: noVR, Src1: noVR, Src2: noVR,
		MemBase: noVR, MemIndex: noVR, Pred: noVR}
}

// memOp is a machine-level memory operand under construction.
type memOp struct {
	base  vreg // noVR = absolute
	index vreg
	scale uint8
	disp  int32
}

type poolKey struct {
	bits uint64
	size uint8
}

// foldCand tracks an emitted load that may still be folded into a following
// ALU instruction as an x86 memory operand.
type foldCand struct {
	block    *mBlock
	pos      int // index of the LD in block.instrs
	mem      memOp
	sz       uint8
	storeGen int
}

type iselCtx struct {
	fs        isa.FeatureSet
	irf       *ir.Func
	mf        *mFunc
	cur       *mBlock
	noFolding bool

	blockMap map[*ir.Block]*mBlock
	reg      []vreg // ir vreg -> machine vreg (scalar)
	pairLo   []vreg // ir I64 vreg -> machine low half (32-bit targets)
	pairHi   []vreg

	useCount  []int
	defCount  []int
	constOnce []bool
	constVal  []int64

	pool     map[poolKey]int32 // -> absolute address
	poolNext int32

	// pending compare fusion: ir bool vreg -> defining Cmp/FCmp instr.
	pending map[ir.VReg]*ir.Instr

	// load-folding bookkeeping (per emission stream).
	folds    map[ir.VReg]foldCand
	lastDef  map[vreg]int // machine vreg -> last def position in cur block
	storeGen int
}

func (c *iselCtx) is64Pair(v ir.VReg) bool {
	return c.fs.Width == 32 && c.irf.TypeOf(v) == ir.I64
}

// szOf returns the machine operand size for a scalar IR type.
func (c *iselCtx) szOf(t ir.Type) uint8 {
	switch t {
	case ir.I32, ir.F32:
		return 4
	case ir.Ptr:
		return uint8(c.fs.Width / 8)
	case ir.V4F32, ir.V4I32:
		return 16
	default:
		return 8
	}
}

func (c *iselCtx) mapScalar(v ir.VReg) vreg {
	if c.reg[v] == noVR {
		c.reg[v] = c.mf.newVReg(c.irf.TypeOf(v).IsFloat())
	}
	return c.reg[v]
}

func (c *iselCtx) mapPair(v ir.VReg) (lo, hi vreg) {
	if c.pairLo[v] == noVR {
		c.pairLo[v] = c.mf.newVReg(false)
		c.pairHi[v] = c.mf.newVReg(false)
	}
	return c.pairLo[v], c.pairHi[v]
}

func (c *iselCtx) emit(in mInstr) int {
	if d, _ := in.def(); d != noVR {
		c.lastDef[d] = len(c.cur.instrs)
	}
	switch in.Op {
	case code.ST, code.FST, code.VST:
		c.storeGen++
	}
	c.cur.instrs = append(c.cur.instrs, in)
	return len(c.cur.instrs) - 1
}

func (c *iselCtx) movRR(dst, src vreg, sz uint8, fp bool) {
	op := code.MOV
	if fp {
		op = code.FMOV
	}
	in := minstr(op, sz)
	in.Dst, in.Src1 = dst, src
	c.emit(in)
}

func (c *iselCtx) movImm(dst vreg, imm int64, sz uint8) {
	in := minstr(code.MOV, sz)
	in.Dst = dst
	in.HasImm, in.Imm = true, imm
	c.emit(in)
}

func (c *iselCtx) setMem(in *mInstr, m memOp) {
	in.HasMem = true
	in.MemBase, in.MemIndex, in.Scale, in.Disp = m.base, m.index, m.scale, m.disp
}

// poolAddr interns an FP constant in the pool and returns its address.
func (c *iselCtx) poolAddr(bits uint64, size uint8) int32 {
	k := poolKey{bits, size}
	if a, ok := c.pool[k]; ok {
		return a
	}
	a := code.PoolBase + c.poolNext
	c.poolNext += 8
	c.pool[k] = a
	c.mf.pool = append(c.mf.pool, code.PoolConst{Addr: uint32(a), Size: size, Bits: bits})
	return a
}

// legalMem lowers an IR memory reference to a machine operand, legalizing
// scales that x86 cannot encode.
func (c *iselCtx) legalMem(mr ir.MemRef) memOp {
	m := memOp{base: c.mapIndexable(mr.Base), index: noVR, scale: 1, disp: int32(mr.Disp)}
	if mr.Index != ir.NoReg {
		idx := c.mapIndexable(mr.Index)
		switch mr.Scale {
		case 1, 2, 4, 8:
			m.index, m.scale = idx, uint8(mr.Scale)
		default:
			t := c.mf.newVReg(false)
			c.movRR(t, idx, uint8(c.fs.Width/8), false)
			mul := minstr(code.IMUL, uint8(c.fs.Width/8))
			mul.Dst, mul.Src1 = t, t
			mul.HasImm, mul.Imm = true, int64(mr.Scale)
			c.emit(mul)
			m.index, m.scale = t, 1
		}
	}
	return m
}

// mapIndexable maps an address-forming register; for 64-bit pairs on 32-bit
// targets the low half carries the address.
func (c *iselCtx) mapIndexable(v ir.VReg) vreg {
	if c.is64Pair(v) {
		lo, _ := c.mapPair(v)
		return lo
	}
	return c.mapScalar(v)
}

// irCC maps an IR condition to the x86 CC for an integer compare.
func irCC(cc ir.Cond) code.CC {
	switch cc {
	case ir.EQ:
		return code.CCEQ
	case ir.NE:
		return code.CCNE
	case ir.LT:
		return code.CCLT
	case ir.LE:
		return code.CCLE
	case ir.GT:
		return code.CCGT
	case ir.GE:
		return code.CCGE
	case ir.ULT:
		return code.CCB
	case ir.ULE:
		return code.CCBE
	case ir.UGT:
		return code.CCA
	default:
		return code.CCAE
	}
}

// fpCC maps an IR condition to the x86 CC after UCOMISS/SD, which sets the
// unsigned-style flags.
func fpCC(cc ir.Cond) code.CC {
	switch cc {
	case ir.EQ:
		return code.CCEQ
	case ir.NE:
		return code.CCNE
	case ir.LT, ir.ULT:
		return code.CCB
	case ir.LE, ir.ULE:
		return code.CCBE
	case ir.GT, ir.UGT:
		return code.CCA
	default:
		return code.CCAE
	}
}

// runISel lowers f to machine IR for the context's feature set.
func runISel(irf *ir.Func, fs isa.FeatureSet, mf *mFunc, noFolding bool) error {
	c := &iselCtx{
		fs: fs, irf: irf, mf: mf, noFolding: noFolding,
		blockMap:  map[*ir.Block]*mBlock{},
		reg:       make([]vreg, irf.NumVRegs()),
		pairLo:    make([]vreg, irf.NumVRegs()),
		pairHi:    make([]vreg, irf.NumVRegs()),
		useCount:  make([]int, irf.NumVRegs()),
		defCount:  make([]int, irf.NumVRegs()),
		constOnce: make([]bool, irf.NumVRegs()),
		constVal:  make([]int64, irf.NumVRegs()),
		pool:      map[poolKey]int32{},
		pending:   map[ir.VReg]*ir.Instr{},
		folds:     map[ir.VReg]foldCand{},
		lastDef:   map[vreg]int{},
	}
	for i := range c.reg {
		c.reg[i], c.pairLo[i], c.pairHi[i] = noVR, noVR, noVR
	}
	// Usage pre-pass.
	var uses []ir.VReg
	for _, b := range irf.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				c.useCount[u]++
			}
			if d := in.Def(); d != ir.NoReg {
				c.defCount[d]++
				if in.Op == ir.Const {
					c.constVal[d] = in.Imm
				}
			}
		}
	}
	for v := range c.constOnce {
		c.constOnce[v] = c.defCount[v] == 1 && c.isConstDef(ir.VReg(v))
	}
	// Create machine blocks in IR layout order.
	for _, b := range irf.Blocks {
		c.blockMap[b] = mf.newBlock(b.Name)
	}
	for _, b := range irf.Blocks {
		c.cur = c.blockMap[b]
		c.folds = map[ir.VReg]foldCand{}
		c.lastDef = map[vreg]int{}
		if err := c.lowerBlock(b); err != nil {
			return err
		}
	}
	return nil
}

func (c *iselCtx) isConstDef(v ir.VReg) bool {
	for _, b := range c.irf.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Def() == v {
				return in.Op == ir.Const
			}
		}
	}
	return false
}

// fusible reports whether the Cmp/FCmp at index pos of block b can be
// deferred to its single consumer in the same block (CondBr terminator or
// Select) without its operands being redefined in between.
func (c *iselCtx) fusible(b *ir.Block, pos int) bool {
	in := &b.Instrs[pos]
	d := in.Dst
	if c.useCount[d] != 1 || c.defCount[d] != 1 {
		return false
	}
	for j := pos + 1; j < len(b.Instrs); j++ {
		nx := &b.Instrs[j]
		consumes := false
		switch nx.Op {
		case ir.CondBr:
			consumes = nx.C == d
		case ir.Select:
			consumes = nx.C == d
		default:
			var us []ir.VReg
			us = nx.Uses(us)
			for _, u := range us {
				if u == d {
					return false // consumed by a non-fusible op
				}
			}
		}
		if consumes {
			return true
		}
		if def := nx.Def(); def != ir.NoReg && (def == in.A || def == in.B) {
			return false
		}
	}
	return false
}

func (c *iselCtx) lowerBlock(b *ir.Block) error {
	for i := range b.Instrs {
		in := &b.Instrs[i]
		switch in.Op {
		case ir.Cmp, ir.FCmp:
			if c.fusible(b, i) {
				c.pending[in.Dst] = in
				continue
			}
			cc, err := c.emitFlagProducer(in)
			if err != nil {
				return err
			}
			set := minstr(code.SETCC, 4)
			set.Dst, set.CC = c.mapScalar(in.Dst), cc
			c.emit(set)
		default:
			if err := c.lowerInstr(in); err != nil {
				return fmt.Errorf("%s/%s: %w", c.irf.Name, b.Name, err)
			}
		}
	}
	return nil
}

// condCC lowers the flag state for a condition register: either the deferred
// compare (fusion) or a TEST of the materialized boolean. It returns the CC
// meaning "condition holds".
func (c *iselCtx) condCC(cond ir.VReg) (code.CC, error) {
	if cmp, ok := c.pending[cond]; ok {
		delete(c.pending, cond)
		return c.emitFlagProducer(cmp)
	}
	t := minstr(code.TEST, 4)
	t.Src1, t.Src2 = c.mapScalar(cond), c.mapScalar(cond)
	t.KeepFlags = true
	c.emit(t)
	return code.CCNE, nil
}

// emitFlagProducer emits the compare sequence for an IR Cmp/FCmp and returns
// the CC under which the comparison holds.
func (c *iselCtx) emitFlagProducer(in *ir.Instr) (code.CC, error) {
	if in.Op == ir.FCmp {
		sz := c.szOf(c.irf.TypeOf(in.A))
		f := minstr(code.FCMP, sz)
		f.Src1, f.Src2 = c.mapScalar(in.A), c.mapScalar(in.B)
		c.emit(f)
		return fpCC(in.CC), nil
	}
	if c.fs.Width == 32 && in.Type == ir.I64 {
		return c.emitCmp64(in)
	}
	sz := c.szOf(in.Type)
	cmp := minstr(code.CMP, sz)
	cmp.Src1 = c.mapScalar(in.A)
	if c.constOnce[in.B] && fitsI32(c.constVal[in.B]) {
		cmp.HasImm, cmp.Imm = true, c.constVal[in.B]
	} else if m, ok := c.tryFold(in.B); ok {
		c.setMem(&cmp, m)
		c.mf.stats.FoldedLoads++
	} else {
		cmp.Src2 = c.mapScalar(in.B)
	}
	c.emit(cmp)
	return irCC(in.CC), nil
}

// emitCmp64 lowers a 64-bit compare on a 32-bit target using the classic
// CMP/SBB flag trick (relational) or XOR/OR (equality).
func (c *iselCtx) emitCmp64(in *ir.Instr) (code.CC, error) {
	alo, ahi := c.mapPair(in.A)
	blo, bhi := c.mapPair(in.B)
	switch in.CC {
	case ir.EQ, ir.NE:
		t1 := c.mf.newVReg(false)
		t2 := c.mf.newVReg(false)
		c.movRR(t1, alo, 4, false)
		x1 := minstr(code.XOR, 4)
		x1.Dst, x1.Src1, x1.Src2 = t1, t1, blo
		c.emit(x1)
		c.movRR(t2, ahi, 4, false)
		x2 := minstr(code.XOR, 4)
		x2.Dst, x2.Src1, x2.Src2 = t2, t2, bhi
		c.emit(x2)
		or := minstr(code.OR, 4)
		or.Dst, or.Src1, or.Src2 = t1, t1, t2
		or.KeepFlags = true
		c.emit(or)
		return irCC(in.CC), nil
	case ir.LT, ir.GE, ir.ULT, ir.UGE:
		c.emitSbbCompare(alo, ahi, blo, bhi)
		return irCC(in.CC), nil
	case ir.GT, ir.LE, ir.UGT, ir.ULE:
		// a > b  <=>  b < a; swap operands and use the mirrored CC.
		c.emitSbbCompare(blo, bhi, alo, ahi)
		switch in.CC {
		case ir.GT:
			return code.CCLT, nil
		case ir.LE:
			return code.CCGE, nil
		case ir.UGT:
			return code.CCB, nil
		default:
			return code.CCAE, nil
		}
	}
	return 0, fmt.Errorf("cmp64: unsupported condition %v", in.CC)
}

// emitSbbCompare sets flags as if comparing the 64-bit values (alo,ahi) and
// (blo,bhi): CMP lo; SBB of highs leaves SF/OF/CF valid for </unsigned-<.
func (c *iselCtx) emitSbbCompare(alo, ahi, blo, bhi vreg) {
	cmp := minstr(code.CMP, 4)
	cmp.Src1, cmp.Src2 = alo, blo
	c.emit(cmp)
	t := c.mf.newVReg(false)
	c.movRR(t, ahi, 4, false)
	sbb := minstr(code.SBB, 4)
	sbb.Dst, sbb.Src1, sbb.Src2 = t, t, bhi
	sbb.KeepFlags = true
	c.emit(sbb)
}

func fitsI32(v int64) bool { return v >= -(1<<31) && v < 1<<31 }

// tryFold attempts to turn the (single-use, same-block, unclobbered) load
// that defined v into a memory operand, removing the emitted LD.
func (c *iselCtx) tryFold(v ir.VReg) (memOp, bool) {
	if c.fs.Complexity != isa.FullX86 || c.noFolding {
		return memOp{}, false
	}
	f, ok := c.folds[v]
	if !ok || f.block != c.cur || c.useCount[v] != 1 {
		return memOp{}, false
	}
	delete(c.folds, v)
	if f.storeGen != c.storeGen {
		return memOp{}, false // a store may alias the folded load
	}
	for _, r := range []vreg{f.mem.base, f.mem.index} {
		if r == noVR {
			continue
		}
		if p, ok := c.lastDef[r]; ok && p > f.pos {
			return memOp{}, false // address register redefined since
		}
	}
	c.cur.instrs[f.pos] = minstr(code.NOP, 0)
	return f.mem, true
}

// binArgs resolves the second operand of a binary op: immediate, foldable
// memory operand, or register.
type binSrc struct {
	reg    vreg
	imm    int64
	hasImm bool
	mem    memOp
	hasMem bool
}

func (c *iselCtx) resolveSrc(b ir.VReg, allowImm bool) binSrc {
	if allowImm && c.constOnce[b] && fitsI32(c.constVal[b]) {
		return binSrc{reg: noVR, hasImm: true, imm: c.constVal[b]}
	}
	if m, ok := c.tryFold(b); ok {
		c.mf.stats.FoldedLoads++
		return binSrc{reg: noVR, hasMem: true, mem: m}
	}
	return binSrc{reg: c.mapScalar(b)}
}

// emitBinop emits a two-address ALU op dst = a OP src.
func (c *iselCtx) emitBinop(op code.Op, sz uint8, fp bool, dst, a vreg, src binSrc, commutative bool) {
	apply := func(target vreg) {
		in := minstr(op, sz)
		in.Dst, in.Src1 = target, target
		switch {
		case src.hasImm:
			in.HasImm, in.Imm = true, src.imm
		case src.hasMem:
			c.setMem(&in, src.mem)
		default:
			in.Src2 = src.reg
		}
		c.emit(in)
	}
	switch {
	case dst == a:
		apply(dst)
	case !src.hasImm && !src.hasMem && dst == src.reg && commutative:
		// dst = a OP dst  ==  dst OP= a for commutative ops.
		in := minstr(op, sz)
		in.Dst, in.Src1, in.Src2 = dst, dst, a
		c.emit(in)
	case !src.hasImm && !src.hasMem && dst == src.reg:
		t := c.mf.newVReg(fp)
		c.movRR(t, a, sz, fp)
		in := minstr(op, sz)
		in.Dst, in.Src1, in.Src2 = t, t, src.reg
		c.emit(in)
		c.movRR(dst, t, sz, fp)
	default:
		c.movRR(dst, a, sz, fp)
		apply(dst)
	}
}

func (c *iselCtx) lowerInstr(in *ir.Instr) error {
	switch in.Op {
	case ir.Nop:
		return nil
	case ir.Const:
		return c.lowerConst(in)
	case ir.FConst:
		return c.lowerFConst(in)
	case ir.Copy:
		return c.lowerCopy(in)
	case ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor:
		return c.lowerIntBin(in)
	case ir.Shl, ir.Shr, ir.Sar:
		return c.lowerShift(in)
	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv:
		return c.lowerFPBin(in)
	case ir.SIToFP:
		if c.irf.TypeOf(in.A) != ir.I32 {
			return fmt.Errorf("sitofp: only i32 sources are supported")
		}
		cv := minstr(code.CVTIF, c.szOf(in.Type))
		cv.Dst, cv.Src1 = c.mapScalar(in.Dst), c.mapScalar(in.A)
		c.emit(cv)
		return nil
	case ir.FPToSI:
		if in.Type != ir.I32 {
			return fmt.Errorf("fptosi: only i32 destinations are supported")
		}
		cv := minstr(code.CVTFI, c.szOf(c.irf.TypeOf(in.A)))
		cv.Dst, cv.Src1 = c.mapScalar(in.Dst), c.mapScalar(in.A)
		c.emit(cv)
		return nil
	case ir.Trunc:
		if c.is64Pair(in.A) {
			lo, _ := c.mapPair(in.A)
			c.movRR(c.mapScalar(in.Dst), lo, 4, false)
		} else {
			c.movRR(c.mapScalar(in.Dst), c.mapScalar(in.A), 4, false)
		}
		return nil
	case ir.Ext:
		return c.lowerExt(in)
	case ir.Splat:
		if c.irf.TypeOf(in.A) != ir.F32 {
			return fmt.Errorf("splat: only f32 sources are supported")
		}
		sp := minstr(code.VSPLAT, 16)
		sp.Dst, sp.Src1 = c.mapScalar(in.Dst), c.mapScalar(in.A)
		c.emit(sp)
		return nil
	case ir.VReduce:
		r := minstr(code.VRSUM, 16)
		r.Dst, r.Src1 = c.mapScalar(in.Dst), c.mapScalar(in.A)
		c.emit(r)
		return nil
	case ir.Load:
		return c.lowerLoad(in)
	case ir.Store:
		return c.lowerStore(in)
	case ir.Select:
		return c.lowerSelect(in)
	case ir.Br:
		c.cur.term = mTerm{Kind: termJmp, Taken: c.blockMap[in.Succs[0]]}
		return nil
	case ir.CondBr:
		cc, err := c.condCC(in.C)
		if err != nil {
			return err
		}
		c.cur.term = mTerm{Kind: termJcc, CC: cc,
			Taken: c.blockMap[in.Succs[0]], Fall: c.blockMap[in.Succs[1]],
			Prob: float32(in.Prob)}
		return nil
	case ir.Ret:
		t := mTerm{Kind: termRet, Ret: noVR}
		if in.A != ir.NoReg {
			if c.is64Pair(in.A) {
				lo, _ := c.mapPair(in.A)
				t.Ret = lo
			} else {
				t.Ret = c.mapScalar(in.A)
			}
		}
		c.cur.term = t
		return nil
	}
	return fmt.Errorf("isel: unhandled IR op %v", in.Op)
}

func (c *iselCtx) lowerConst(in *ir.Instr) error {
	if c.is64Pair(in.Dst) {
		lo, hi := c.mapPair(in.Dst)
		c.movImm(lo, int64(uint32(uint64(in.Imm))), 4)
		c.movImm(hi, int64(uint32(uint64(in.Imm)>>32)), 4)
		return nil
	}
	c.movImm(c.mapScalar(in.Dst), in.Imm, c.szOf(in.Type))
	return nil
}

func (c *iselCtx) lowerFConst(in *ir.Instr) error {
	var bits uint64
	var sz uint8
	if in.Type == ir.F32 {
		bits = uint64(f32bits(float32(in.FImm)))
		sz = 4
	} else {
		bits = f64bits(in.FImm)
		sz = 8
	}
	addr := c.poolAddr(bits, sz)
	ld := minstr(code.FLD, sz)
	ld.Dst = c.mapScalar(in.Dst)
	c.setMem(&ld, memOp{base: noVR, index: noVR, scale: 1, disp: addr})
	c.emit(ld)
	return nil
}

func (c *iselCtx) lowerCopy(in *ir.Instr) error {
	if c.is64Pair(in.Dst) {
		dlo, dhi := c.mapPair(in.Dst)
		slo, shi := c.mapPair(in.A)
		c.movRR(dlo, slo, 4, false)
		c.movRR(dhi, shi, 4, false)
		return nil
	}
	t := in.Type
	c.movRR(c.mapScalar(in.Dst), c.mapScalar(in.A), c.szOf(t), t.IsFloat())
	return nil
}

var intOpFor = map[ir.Op]code.Op{
	ir.Add: code.ADD, ir.Sub: code.SUB, ir.Mul: code.IMUL,
	ir.And: code.AND, ir.Or: code.OR, ir.Xor: code.XOR,
}

func (c *iselCtx) lowerIntBin(in *ir.Instr) error {
	op := intOpFor[in.Op]
	commutative := in.Op != ir.Sub
	if c.fs.Width == 32 && in.Type == ir.I64 {
		return c.lowerIntBin64(in)
	}
	if in.Type.IsVector() {
		var vop code.Op
		switch in.Op {
		case ir.Add:
			vop = code.VADDI
		case ir.Sub:
			vop = code.VSUBI
		case ir.Mul:
			vop = code.VMULI
		default:
			return fmt.Errorf("vector %v unsupported", in.Op)
		}
		src := c.resolveSrc(in.B, false)
		c.emitBinop(vop, 16, true, c.mapScalar(in.Dst), c.mapScalar(in.A), src, in.Op != ir.Sub)
		return nil
	}
	sz := c.szOf(in.Type)
	src := c.resolveSrc(in.B, true)
	c.emitBinop(op, sz, false, c.mapScalar(in.Dst), c.mapScalar(in.A), src, commutative)
	return nil
}

// lowerIntBin64 expands a 64-bit integer op into 32-bit pair arithmetic.
func (c *iselCtx) lowerIntBin64(in *ir.Instr) error {
	dlo, dhi := c.mapPair(in.Dst)
	alo, ahi := c.mapPair(in.A)
	blo, bhi := c.mapPair(in.B)
	emitPairALU := func(loOp, hiOp code.Op) {
		// Compute into temporaries when the destination aliases the
		// second source; the common Assign(acc, op, acc, x) pattern
		// (dst == a) stays in place.
		tlo, thi := dlo, dhi
		if dlo == blo || dhi == bhi || dhi == blo || dlo == bhi {
			tlo, thi = c.mf.newVReg(false), c.mf.newVReg(false)
		}
		if tlo != alo {
			c.movRR(tlo, alo, 4, false)
		}
		lo := minstr(loOp, 4)
		lo.Dst, lo.Src1, lo.Src2 = tlo, tlo, blo
		// The high half consumes the low half's carry/borrow; the low op
		// must survive DCE even if its register result turns out dead.
		lo.KeepFlags = loOp == code.ADD || loOp == code.SUB
		c.emit(lo)
		if thi != ahi {
			c.movRR(thi, ahi, 4, false)
		}
		hi := minstr(hiOp, 4)
		hi.Dst, hi.Src1, hi.Src2 = thi, thi, bhi
		c.emit(hi)
		if tlo != dlo {
			c.movRR(dlo, tlo, 4, false)
			c.movRR(dhi, thi, 4, false)
		}
	}
	switch in.Op {
	case ir.Add:
		emitPairALU(code.ADD, code.ADC)
	case ir.Sub:
		emitPairALU(code.SUB, code.SBB)
	case ir.And:
		emitPairALU(code.AND, code.AND)
	case ir.Or:
		emitPairALU(code.OR, code.OR)
	case ir.Xor:
		emitPairALU(code.XOR, code.XOR)
	case ir.Mul:
		return fmt.Errorf("64-bit multiply cannot be emulated on 32-bit targets")
	}
	return nil
}

func (c *iselCtx) lowerShift(in *ir.Instr) error {
	var op code.Op
	switch in.Op {
	case ir.Shl:
		op = code.SHL
	case ir.Shr:
		op = code.SHR
	default:
		op = code.SAR
	}
	k := in.Imm
	if c.fs.Width == 32 && in.Type == ir.I64 {
		return c.lowerShift64(in, op, k)
	}
	sz := c.szOf(in.Type)
	dst, a := c.mapScalar(in.Dst), c.mapScalar(in.A)
	if dst != a {
		c.movRR(dst, a, sz, false)
	}
	sh := minstr(op, sz)
	sh.Dst, sh.Src1 = dst, dst
	sh.HasImm, sh.Imm = true, k
	c.emit(sh)
	return nil
}

// lowerShift64 expands a 64-bit shift by a constant 1..31 on a 32-bit target.
func (c *iselCtx) lowerShift64(in *ir.Instr, op code.Op, k int64) error {
	if k < 1 || k > 31 {
		return fmt.Errorf("64-bit shift by %d cannot be emulated (supported range 1..31)", k)
	}
	dlo, dhi := c.mapPair(in.Dst)
	alo, ahi := c.mapPair(in.A)
	tlo, thi := c.mf.newVReg(false), c.mf.newVReg(false)
	tc := c.mf.newVReg(false)
	sh := func(dst vreg, o code.Op, n int64) {
		s := minstr(o, 4)
		s.Dst, s.Src1 = dst, dst
		s.HasImm, s.Imm = true, n
		c.emit(s)
	}
	switch op {
	case code.SHL:
		c.movRR(thi, ahi, 4, false)
		sh(thi, code.SHL, k)
		c.movRR(tc, alo, 4, false)
		sh(tc, code.SHR, 32-k)
		or := minstr(code.OR, 4)
		or.Dst, or.Src1, or.Src2 = thi, thi, tc
		c.emit(or)
		c.movRR(tlo, alo, 4, false)
		sh(tlo, code.SHL, k)
	case code.SHR, code.SAR:
		c.movRR(tlo, alo, 4, false)
		sh(tlo, code.SHR, k)
		c.movRR(tc, ahi, 4, false)
		sh(tc, code.SHL, 32-k)
		or := minstr(code.OR, 4)
		or.Dst, or.Src1, or.Src2 = tlo, tlo, tc
		c.emit(or)
		c.movRR(thi, ahi, 4, false)
		sh(thi, op, k)
	}
	c.movRR(dlo, tlo, 4, false)
	c.movRR(dhi, thi, 4, false)
	return nil
}

var fpOpFor = map[ir.Op]code.Op{
	ir.FAdd: code.FADD, ir.FSub: code.FSUB, ir.FMul: code.FMUL, ir.FDiv: code.FDIV,
}

var vecOpFor = map[ir.Op]code.Op{
	ir.FAdd: code.VADDF, ir.FSub: code.VSUBF, ir.FMul: code.VMULF,
}

func (c *iselCtx) lowerFPBin(in *ir.Instr) error {
	var op code.Op
	if in.Type == ir.V4F32 {
		var ok bool
		op, ok = vecOpFor[in.Op]
		if !ok {
			return fmt.Errorf("vector %v unsupported", in.Op)
		}
	} else {
		op = fpOpFor[in.Op]
	}
	sz := c.szOf(in.Type)
	src := c.resolveSrc(in.B, false)
	commutative := in.Op == ir.FAdd || in.Op == ir.FMul
	c.emitBinop(op, sz, true, c.mapScalar(in.Dst), c.mapScalar(in.A), src, commutative)
	return nil
}

func (c *iselCtx) lowerExt(in *ir.Instr) error {
	if c.fs.Width == 64 {
		mx := minstr(code.MOVSX, 8)
		mx.Dst, mx.Src1 = c.mapScalar(in.Dst), c.mapScalar(in.A)
		c.emit(mx)
		return nil
	}
	dlo, dhi := c.mapPair(in.Dst)
	src := c.mapScalar(in.A)
	c.movRR(dlo, src, 4, false)
	c.movRR(dhi, src, 4, false)
	sh := minstr(code.SAR, 4)
	sh.Dst, sh.Src1 = dhi, dhi
	sh.HasImm, sh.Imm = true, 31
	c.emit(sh)
	return nil
}

func (c *iselCtx) lowerLoad(in *ir.Instr) error {
	m := c.legalMem(in.Mem)
	if c.is64Pair(in.Dst) {
		dlo, dhi := c.mapPair(in.Dst)
		lo := minstr(code.LD, 4)
		lo.Dst = dlo
		c.setMem(&lo, m)
		c.emit(lo)
		hi := minstr(code.LD, 4)
		hi.Dst = dhi
		m2 := m
		m2.disp += 4
		c.setMem(&hi, m2)
		c.emit(hi)
		return nil
	}
	var op code.Op
	sz := c.szOf(in.Type)
	switch {
	case in.Type.IsVector():
		op = code.VLD
	case in.Type.IsFloat():
		op = code.FLD
	default:
		op = code.LD
		if in.MemSize == 1 {
			sz = 1
		}
	}
	ld := minstr(op, sz)
	ld.Dst = c.mapScalar(in.Dst)
	c.setMem(&ld, m)
	pos := c.emit(ld)
	// Register as a folding candidate for a later ALU consumer.
	if in.MemSize == 0 && c.useCount[in.Dst] == 1 {
		c.folds[in.Dst] = foldCand{block: c.cur, pos: pos, mem: m, sz: sz, storeGen: c.storeGen}
	}
	return nil
}

func (c *iselCtx) lowerStore(in *ir.Instr) error {
	m := c.legalMem(in.Mem)
	if c.is64Pair(in.A) {
		slo, shi := c.mapPair(in.A)
		lo := minstr(code.ST, 4)
		lo.Src1 = slo
		c.setMem(&lo, m)
		c.emit(lo)
		hi := minstr(code.ST, 4)
		hi.Src1 = shi
		m2 := m
		m2.disp += 4
		c.setMem(&hi, m2)
		c.emit(hi)
		return nil
	}
	var op code.Op
	sz := c.szOf(in.Type)
	switch {
	case in.Type.IsVector():
		op = code.VST
	case in.Type.IsFloat():
		op = code.FST
	default:
		op = code.ST
		if in.MemSize == 1 {
			sz = 1
		}
	}
	st := minstr(op, sz)
	st.Src1 = c.mapScalar(in.A)
	c.setMem(&st, m)
	c.emit(st)
	return nil
}

func (c *iselCtx) lowerSelect(in *ir.Instr) error {
	if in.Type.IsFloat() {
		return fmt.Errorf("select: FP selects are not supported (no FP cmov)")
	}
	cc, err := c.condCC(in.C)
	if err != nil {
		return err
	}
	emitSel := func(dst, a, b vreg, sz uint8) {
		// dst = cc ? a : b. CMOV preserves flags; MOV does too.
		if dst != b {
			c.movRR(dst, b, sz, false)
		}
		cm := minstr(code.CMOVCC, sz)
		cm.Dst, cm.Src1, cm.CC = dst, a, cc
		c.emit(cm)
	}
	if c.is64Pair(in.Dst) {
		dlo, dhi := c.mapPair(in.Dst)
		alo, ahi := c.mapPair(in.A)
		blo, bhi := c.mapPair(in.B)
		// Guard aliasing: if dst aliases a, route through temps.
		if dlo == alo || dhi == ahi {
			tlo, thi := c.mf.newVReg(false), c.mf.newVReg(false)
			emitSel(tlo, alo, blo, 4)
			emitSel(thi, ahi, bhi, 4)
			c.movRR(dlo, tlo, 4, false)
			c.movRR(dhi, thi, 4, false)
		} else {
			emitSel(dlo, alo, blo, 4)
			emitSel(dhi, ahi, bhi, 4)
		}
		return nil
	}
	sz := c.szOf(in.Type)
	dst, a, b := c.mapScalar(in.Dst), c.mapScalar(in.A), c.mapScalar(in.B)
	if dst == a {
		// dst = cc ? dst : b  ==  if !cc dst = b.
		cm := minstr(code.CMOVCC, sz)
		cm.Dst, cm.Src1, cm.CC = dst, b, cc.Negate()
		c.emit(cm)
		return nil
	}
	emitSel(dst, a, b, sz)
	return nil
}
