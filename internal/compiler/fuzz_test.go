package compiler

import (
	"testing"

	"compisa/internal/cpu"
	"compisa/internal/ir"
	"compisa/internal/isa"
	"compisa/internal/mem"
)

// randProg builds a random-but-valid IR region from a seed: straight-line
// integer arithmetic, memory traffic into a scratch array, data-dependent
// diamonds, and a counted loop — everything defined before use, shifts in
// range, addresses in bounds. Differential testing across all feature sets
// then gives broad coverage of isel/if-conversion/regalloc interactions that
// the hand-written kernels may miss.
type randGen struct {
	state uint64
}

func (g *randGen) next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state >> 11
}

func (g *randGen) intn(n int) int { return int(g.next() % uint64(n)) }

func randProg(seed uint64) (*ir.Func, *mem.Memory) {
	g := &randGen{state: seed*2654435761 + 12345}
	m := mem.New()
	const base = uint64(0x0800_0000)
	const words = 256
	for i := 0; i < words; i++ {
		m.Write(base+uint64(i)*4, 4, g.next()&0xffffffff)
		m.Write(base+0x1000+uint64(i)*8, 8, g.next())
	}

	b := ir.NewBuilder("fuzz")
	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")

	p32 := b.Const(ir.Ptr, int64(base))
	p64 := b.Const(ir.Ptr, int64(base)+0x1000)
	mask := b.Const(ir.I32, words-1)

	// Pools of defined values.
	var vals32 []ir.VReg
	var vals64 []ir.VReg
	for i := 0; i < 4+g.intn(6); i++ {
		vals32 = append(vals32, b.Const(ir.I32, int64(g.next()&0xffff)))
	}
	for i := 0; i < 3+g.intn(4); i++ {
		vals64 = append(vals64, b.Const(ir.I64, int64(g.next())))
	}
	i := b.Const(ir.I32, 0)
	trip := b.Const(ir.I32, int64(8+g.intn(40)))
	acc := b.Const(ir.I32, 1)
	b.Br(header)

	b.SetBlock(header)
	c := b.Cmp(ir.LT, ir.I32, i, trip)
	b.CondBr(c, body, exit, 0.9)

	b.SetBlock(body)
	pick32 := func() ir.VReg { return vals32[g.intn(len(vals32))] }
	pick64 := func() ir.VReg { return vals64[g.intn(len(vals64))] }
	binops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor}
	n := 6 + g.intn(14)
	for k := 0; k < n; k++ {
		switch g.intn(10) {
		case 0, 1, 2: // 32-bit arithmetic
			op := binops[g.intn(len(binops))]
			vals32 = append(vals32, b.Bin(op, ir.I32, pick32(), pick32()))
		case 3: // 64-bit arithmetic (no Mul: not emulatable on w32)
			op := binops[g.intn(len(binops))]
			if op == ir.Mul {
				op = ir.Add
			}
			vals64 = append(vals64, b.Bin(op, ir.I64, pick64(), pick64()))
		case 4: // shifts
			if g.intn(2) == 0 {
				op := []ir.Op{ir.Shl, ir.Shr, ir.Sar}[g.intn(3)]
				vals32 = append(vals32, b.Shift(op, ir.I32, pick32(), int64(1+g.intn(30))))
			} else {
				op := []ir.Op{ir.Shl, ir.Shr, ir.Sar}[g.intn(3)]
				vals64 = append(vals64, b.Shift(op, ir.I64, pick64(), int64(1+g.intn(30))))
			}
		case 5: // 32-bit load
			idx := b.Bin(ir.And, ir.I32, pick32(), mask)
			vals32 = append(vals32, b.Load(ir.I32, p32, idx, 4, 0))
		case 6: // 64-bit load/store
			idx := b.Bin(ir.And, ir.I32, pick32(), mask)
			if g.intn(2) == 0 {
				vals64 = append(vals64, b.Load(ir.I64, p64, idx, 8, 0))
			} else {
				b.Store(ir.I64, pick64(), p64, idx, 8, 0)
			}
		case 7: // store + select
			idx := b.Bin(ir.And, ir.I32, pick32(), mask)
			b.Store(ir.I32, pick32(), p32, idx, 4, 0)
			cc := []ir.Cond{ir.EQ, ir.NE, ir.LT, ir.GE, ir.ULT, ir.UGE}[g.intn(6)]
			cv := b.Cmp(cc, ir.I32, pick32(), pick32())
			vals32 = append(vals32, b.Select(ir.I32, cv, pick32(), pick32()))
		case 8: // 64-bit compare + select
			cc := []ir.Cond{ir.EQ, ir.NE, ir.LT, ir.LE, ir.GT, ir.GE, ir.ULT, ir.ULE, ir.UGT, ir.UGE}[g.intn(10)]
			cv := b.Cmp(cc, ir.I64, pick64(), pick64())
			vals64 = append(vals64, b.Select(ir.I64, cv, pick64(), pick64()))
		case 9: // diamond
			cc := []ir.Cond{ir.EQ, ir.NE, ir.LT, ir.GE}[g.intn(4)]
			cv := b.Cmp(cc, ir.I32, pick32(), pick32())
			tArm := b.Block("t")
			fArm := b.Block("f")
			join := b.Block("j")
			x, y := pick32(), pick32()
			b.CondBr(cv, tArm, fArm, 0.5)
			b.SetBlock(tArm)
			b.Assign(acc, ir.Add, ir.I32, acc, x)
			b.Br(join)
			b.SetBlock(fArm)
			b.Assign(acc, ir.Xor, ir.I32, acc, y)
			b.Br(join)
			b.SetBlock(join)
		}
	}
	// Fold the freshest values into acc so nothing is trivially dead.
	b.Assign(acc, ir.Xor, ir.I32, acc, vals32[len(vals32)-1])
	lo := b.Unary(ir.Trunc, ir.I32, vals64[len(vals64)-1])
	b.Assign(acc, ir.Add, ir.I32, acc, lo)
	b.AddImm(i, i, ir.I32, 1)
	b.Br(header)

	b.SetBlock(exit)
	b.Ret(acc)
	return b.F, m
}

// fuzzFeatureSets is a representative slice of the 26 (all dimensions vary).
var fuzzFeatureSets = []isa.FeatureSet{
	isa.MicroX86Min,
	isa.MustNew(isa.MicroX86, 32, 64, isa.FullPredication),
	isa.MustNew(isa.MicroX86, 64, 16, isa.PartialPredication),
	isa.MustNew(isa.FullX86, 32, 8, isa.PartialPredication),
	isa.MustNew(isa.FullX86, 32, 16, isa.FullPredication),
	isa.X8664,
	isa.Superset,
}

func TestFuzzDifferentialCompile(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 1; seed <= seeds; seed++ {
		var want [2]uint64
		for wi, width := range []int{32, 64} {
			f, m := randProg(uint64(seed))
			if err := f.Verify(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := ir.Interp(f, m, width/8, 10_000_000)
			if err != nil {
				t.Fatalf("seed %d interp: %v", seed, err)
			}
			want[wi] = res.Ret & 0xffffffff
		}
		// Note: randProg's data layout is width-independent, so the two
		// interpreter runs agree unless 64-bit truncation semantics
		// differ (they must not for these ops).
		for _, fs := range fuzzFeatureSets {
			f, m := randProg(uint64(seed))
			prog, err := Compile(f, fs, Options{})
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, fs.ShortName(), err)
			}
			st := cpu.NewState(m)
			res, err := cpu.Run(prog, st, 10_000_000, nil)
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, fs.ShortName(), err)
			}
			w := want[1]
			if fs.Width == 32 {
				w = want[0]
			}
			if res.Ret&0xffffffff != w {
				t.Errorf("seed %d on %s: got %#x want %#x", seed, fs.ShortName(), res.Ret, w)
			}
		}
	}
}

func TestFuzzAggressivePredication(t *testing.T) {
	opts := Options{IfConvert: &ifConvertOptions{PipelineDepth: 1000, MaxArmInstrs: 64}}
	fs := isa.MustNew(isa.MicroX86, 64, 32, isa.FullPredication)
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := 1; seed <= seeds; seed++ {
		f, m := randProg(uint64(seed))
		ref, err := ir.Interp(f, m.Clone(), 8, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		f2, m2 := randProg(uint64(seed))
		prog, err := Compile(f2, fs, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := cpu.Run(prog, cpu.NewState(m2), 10_000_000, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Ret&0xffffffff != ref.Ret&0xffffffff {
			t.Errorf("seed %d: aggressive if-conversion changed result: %#x vs %#x",
				seed, res.Ret, ref.Ret)
		}
	}
}

func TestFuzzValidateAllFeatureSets(t *testing.T) {
	// Every compile of every seed must pass the feature-set validator
	// (Compile validates internally; this asserts it also holds for the
	// full 26-set sweep on a couple of seeds).
	for _, seed := range []uint64{3, 17} {
		for _, fs := range isa.Derive() {
			f, _ := randProg(seed)
			prog, err := Compile(f, fs, Options{})
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, fs.ShortName(), err)
			}
			if err := prog.Validate(); err != nil {
				t.Errorf("seed %d on %s: %v", seed, fs.ShortName(), err)
			}
		}
	}
}
