package compiler

import (
	"testing"

	"compisa/internal/code"
	"compisa/internal/cpu"
	"compisa/internal/isa"
)

// TestDifferentialAlpha64 is the cross-target backbone test: every kernel
// compiled for the x86-ized Alpha feature set must compute the identical
// checksum whether it is encoded for the default x86 target or the alpha64
// fixed-length target, and both must match the IR interpreter.
func TestDifferentialAlpha64(t *testing.T) {
	for _, k := range allKernels() {
		want := reference(t, k, 64)
		gotX86, _, _ := compileAndRun(t, k, isa.X86izedAlpha, Options{})
		gotAlpha, prog, _ := compileAndRun(t, k, isa.X86izedAlpha, Options{Target: "alpha64"})
		if gotX86 != want {
			t.Errorf("%s x86: got %#x want %#x", k.name, gotX86, want)
		}
		if gotAlpha != want {
			t.Errorf("%s alpha64: got %#x want %#x", k.name, gotAlpha, want)
		}
		if prog.Target != "alpha64" {
			t.Errorf("%s: program target = %q, want alpha64", k.name, prog.Target)
		}
		if prog.Size != 4*len(prog.Instrs) {
			t.Errorf("%s: fixed-length layout broken: %d bytes for %d instrs",
				k.name, prog.Size, len(prog.Instrs))
		}
	}
}

// TestAlpha64LegalizationUnderPressure forces heavy spilling at shallow
// register depth so spill traffic flows through the reserved spill-base
// register, and checks both semantics and target legality.
func TestAlpha64LegalizationUnderPressure(t *testing.T) {
	k := kernel{"pressure", pressureKernel}
	want := reference(t, k, 64)
	for _, depth := range []int{16} {
		fs := isa.MustNew(isa.MicroX86, 64, depth, isa.PartialPredication)
		f, m := k.build(fs.Width)
		prog, err := Compile(f, fs, Options{Target: "alpha64"})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if prog.Stats.RefillLoads == 0 {
			t.Fatalf("depth %d: pressure kernel did not spill", depth)
		}
		tgt := &isa.Alpha64Target
		for i := range prog.Instrs {
			if err := code.TargetCheck(&prog.Instrs[i], tgt); err != nil {
				t.Fatalf("depth %d [%d] %s: %v", depth, i, code.FormatInstr(&prog.Instrs[i]), err)
			}
		}
		st := cpu.NewState(m)
		res, err := cpu.Run(prog, st, 50_000_000, nil)
		if err != nil {
			t.Fatalf("depth %d: run: %v", depth, err)
		}
		if got := res.Ret & 0xffffffff; got != want {
			t.Errorf("depth %d: got %#x want %#x", depth, got, want)
		}
	}
}

// TestAlpha64RejectsUnsupportedFeatureSets pins the SupportsFS gate: feature
// sets outside the alpha64 encoding envelope fail loudly at compile time.
func TestAlpha64RejectsUnsupportedFeatureSets(t *testing.T) {
	bad := []isa.FeatureSet{
		isa.X8664,     // full x86 complexity needs memory operands
		isa.Superset,  // SIMD + full predication
		isa.X86izedThumb, // width 32 needs carry pairs
		isa.MustNew(isa.MicroX86, 64, 64, isa.PartialPredication), // depth 64 > 32 regs
	}
	for _, fs := range bad {
		f, _ := sumLoopKernel(64)
		if _, err := Compile(f, fs, Options{Target: "alpha64"}); err == nil {
			t.Errorf("%s: expected alpha64 compile to fail", fs.ShortName())
		}
	}
	f, _ := sumLoopKernel(64)
	if _, err := Compile(f, isa.X86izedAlpha, Options{Target: "bogus"}); err == nil {
		t.Error("unknown target must fail")
	}
}

// TestBuildImm pins the ld-imm splitting sequences: value correctness is
// covered end to end by the differential tests; here we check shape.
func TestBuildImm(t *testing.T) {
	cases := []struct {
		v      int64
		sz     uint8
		maxLen int
	}{
		{0, 8, 1},
		{42, 8, 1},
		{-42, 8, 8}, // all-ones upper chunks: MOV 0/OR + 3x(SHL+OR)
		{0x7fff, 8, 1},
		{0x8000, 8, 3},  // mov 0; or; shl... leading chunk 0x8000 at k=0? built as MOV 0/OR
		{0x12345678, 4, 3},
		{int64(int32(-1)), 4, 4},
		{0x7000_0000, 8, 2}, // spill base: MOV 0x7000 / SHL 16
	}
	for _, c := range cases {
		seq := buildImm(5, c.v, c.sz)
		if len(seq) == 0 || len(seq) > c.maxLen {
			t.Errorf("buildImm(%#x, sz%d): %d instrs, want 1..%d", c.v, c.sz, len(seq), c.maxLen)
		}
		for i := range seq {
			if !code.ImmOK(seq[i].Op, seq[i].Imm, &isa.Alpha64Target) {
				t.Errorf("buildImm(%#x): instr %d imm %#x not encodable", c.v, i, seq[i].Imm)
			}
		}
	}
}
