// Command compose-simpoint demonstrates the SimPoint methodology on a
// benchmark: it compiles the benchmark's regions into one concatenated
// execution, collects basic-block vectors over fixed intervals, clusters
// them with k-means, and reports the representative phases — the same
// process that produced the paper's 49 regions from 8 benchmarks.
//
// Usage:
//
//	compose-simpoint -bench bzip2 -interval 5000 -k 8
package main

import (
	"flag"
	"fmt"
	"log"

	"compisa/internal/compiler"
	"compisa/internal/isa"
	"compisa/internal/simpoint"
	"compisa/internal/workload"
)

func main() {
	bench := flag.String("bench", "bzip2", "benchmark name")
	interval := flag.Int64("interval", 5000, "interval length in dynamic instructions")
	k := flag.Int("k", 8, "maximum number of phases")
	flag.Parse()

	b, err := workload.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %d ground-truth regions\n", b.Name, len(b.Regions))
	totalPhases := 0
	for _, r := range b.Regions {
		f, m, err := r.Build(64)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := compiler.Compile(f, isa.X8664, compiler.Options{})
		if err != nil {
			log.Fatal(err)
		}
		prog.Name = r.Name
		ivs, err := simpoint.CollectBBV(prog, m, *interval, 100_000_000)
		if err != nil {
			log.Fatal(err)
		}
		phases := simpoint.KMeans(ivs, *k, 1)
		totalPhases += len(phases)
		fmt.Printf("  %-10s %4d intervals -> %d phase(s):", r.Name, len(ivs), len(phases))
		for _, ph := range phases {
			fmt.Printf(" [rep@%d w=%.2f]", ph.Representative, ph.Weight)
		}
		fmt.Println()
	}
	fmt.Printf("total: %d phases discovered across %d regions\n", totalPhases, len(b.Regions))
	fmt.Println("\n(each synthetic region is a single kernel, so SimPoint should find it")
	fmt.Println("phase-stable: one dominant cluster per region, as the output shows)")
}
