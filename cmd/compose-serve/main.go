// Command compose-serve exposes the design-point evaluation pipeline as a
// long-lived HTTP/JSON service, so interactive tools and sweep clients
// share one process-wide cache instead of paying the full profile+score
// cost per invocation.
//
// Endpoints:
//
//	POST /evaluate      score one design point or a batch (≤256)
//	POST /explore       start an async sweep; poll GET /explore/{id}
//	GET  /healthz       liveness (503 + Retry-After while draining)
//	GET  /metrics       Prometheus text exposition
//
// Operational controls:
//
//	-checkpoint  warm-start both cache tiers from a compose-explore
//	             checkpoint and save the (grown) caches on shutdown. A
//	             corrupt checkpoint is quarantined to <path>.corrupt and
//	             the server starts cold (-checkpoint-strict fails instead).
//	-store       crash-safe append-only candidate store: every fresh
//	             evaluation is written through as it completes, and the
//	             candidate cache warm-starts from the log at boot. Store
//	             failures never fail serving — a circuit breaker degrades
//	             to memory-only ( /healthz "degraded") and probes for
//	             recovery.
//	-warm        compute the reference metrics in the background at boot,
//	             so the first request doesn't pay for them.
//	-regions     serve only the first N suite regions (CI smoke runs).
//	-jit         JIT-compile region programs to native code on supported
//	             hosts (linux/amd64); profiles are identical to the
//	             interpreter's, and /metrics gains compisa_serve_jit_*.
//	-pprof       serve net/http/pprof on a second listener (e.g.
//	             localhost:6060), kept off the API mux so profiling a
//	             production server never exposes debug handlers to clients.
//
// SIGTERM/SIGINT drains gracefully: in-flight requests complete, new ones
// get 503 + Retry-After, then the caches are checkpointed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // debug handlers on the DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"compisa/internal/eval"
	"compisa/internal/explore"
	"compisa/internal/jit"
	"compisa/internal/par"
	"compisa/internal/serve"
	"compisa/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "max concurrent evaluations (0 = one per CPU)")
	queue := flag.Int("queue", 0, "max evaluations waiting for a worker before 429 (0 = 4x workers)")
	timeout := flag.Duration("timeout", 2*time.Minute, "server-side deadline per design-point evaluation")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: warm-start caches from it, save them back on shutdown")
	checkpointStrict := flag.Bool("checkpoint-strict", false, "fail on a corrupt checkpoint instead of quarantining it and starting cold")
	storePath := flag.String("store", "", "crash-safe candidate store: warm-start from it, write evaluations through as they complete")
	storeSyncEvery := flag.Int("store-sync-every", 1, "group-commit boundary: fsync the store every N appended records")
	regions := flag.Int("regions", 0, "serve only the first N suite regions (0 = full suite)")
	verify := flag.Bool("verify", true, "statically verify compiled regions against their feature sets")
	warm := flag.Bool("warm", false, "compute reference metrics in the background at startup")
	stats := flag.Bool("stats", false, "print evaluation pipeline statistics on exit")
	useJIT := flag.Bool("jit", false, "JIT-compile region programs to native code (linux/amd64; elsewhere the interpreter runs as usual)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled); separate from the API listener")
	flag.Parse()
	log.SetFlags(0)

	if err := run(*addr, *workers, *queue, *timeout, *drainTimeout, *checkpoint, *checkpointStrict,
		*storePath, *storeSyncEvery, *regions, *verify, *warm, *stats, *useJIT, *pprofAddr); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, workers, queue int, timeout, drainTimeout time.Duration,
	checkpoint string, checkpointStrict bool, storePath string, storeSyncEvery int,
	regions int, verify, warm, stats, useJIT bool, pprofAddr string) error {
	if pprofAddr != "" {
		// The API server builds its own mux (serve.Handler), so the
		// net/http/pprof handlers registered on the DefaultServeMux are
		// reachable only through this dedicated listener. Listen before
		// logging so ":0" reports the bound port, not the requested one.
		pln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		log.Printf("[pprof listening on http://%s/debug/pprof/]", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}
	db := explore.NewDB()
	db.Verify = verify
	db.Log = func(format string, args ...any) { log.Printf(format, args...) }
	if useJIT {
		if !jit.Available() {
			log.Print("[-jit requested but native execution is unavailable on this platform; using the interpreter]")
		}
		db.JIT = jit.New(jit.Config{})
	}
	if regions > 0 && regions < len(db.Regions) {
		db.Regions = db.Regions[:regions]
	}

	if checkpoint != "" {
		var st *explore.CheckpointState
		var err error
		if checkpointStrict {
			st, err = explore.LoadCheckpoint(checkpoint)
		} else {
			var quarantined string
			st, quarantined, err = explore.RecoverCheckpoint(checkpoint)
			if quarantined != "" {
				log.Printf("[corrupt checkpoint quarantined to %s; starting cold]", quarantined)
			}
		}
		if err != nil {
			return err
		}
		if st != nil {
			st.RestoreDB(db)
			log.Printf("[warm-started from %s: %d ISA profile sets, %d candidates]",
				checkpoint, len(st.Profiles), len(st.Candidates))
		}
	}

	// The durable tier is strictly optional: if the store cannot open, log
	// and serve memory-only rather than refuse to start. Once open, a
	// circuit breaker keeps runtime store failures away from the request
	// path, and the candidate cache warm-starts from the log.
	var breaker *serve.StoreBreaker
	var candStore *store.Store
	if storePath != "" {
		cs, err := store.Open(storePath, store.Options{
			SyncEvery: storeSyncEvery,
			Log:       func(format string, args ...any) { log.Printf(format, args...) },
		})
		if err != nil {
			log.Printf("[store %s unavailable, serving memory-only: %v]", storePath, err)
		} else {
			candStore = cs
			adapter := &eval.CandidateStore{S: cs}
			loaded, skipped, lerr := adapter.LoadInto(db)
			if lerr != nil {
				log.Printf("[store warm-start: %v]", lerr)
			} else if loaded > 0 || skipped > 0 {
				log.Printf("[warm-started %d candidates from store %s (%d skipped)]", loaded, storePath, skipped)
			}
			breaker = serve.NewStoreBreaker(adapter, serve.BreakerConfig{
				Log: func(format string, args ...any) { log.Printf(format, args...) },
			})
			db.Persist = breaker
		}
	}

	if workers <= 0 {
		workers = par.DefaultLimit()
	}
	srv := serve.New(db, serve.Config{
		Workers: workers, Queue: queue, Timeout: timeout,
		EvalStats: &db.Stats,
		JIT:       db.JIT,
		Store:     breaker,
		Log:       func(format string, args ...any) { log.Printf(format, args...) },
	})
	srv.MarkEvaluated(db.CandidateKeys()...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if warm {
		go func() {
			if _, err := db.ReferenceMetrics(ctx); err != nil && ctx.Err() == nil {
				log.Printf("warm reference metrics: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Printed for humans and for scripts that booted with :0.
	fmt.Fprintf(os.Stderr, "listening on http://%s (%d regions, %d workers)\n",
		ln.Addr(), len(db.Regions), workers)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("[shutting down: draining up to %s]", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if checkpoint != "" {
		if err := explore.SaveCheckpoint(checkpoint, explore.Snapshot(db, nil)); err != nil {
			log.Printf("checkpoint: %v", err)
		} else {
			log.Printf("[caches saved to %s]", checkpoint)
		}
	}
	if candStore != nil {
		if err := candStore.Close(); err != nil {
			log.Printf("store close: %v", err)
		}
	}
	if stats {
		fmt.Fprint(os.Stderr, db.StatsSnapshot().Format())
	}
	return nil
}
