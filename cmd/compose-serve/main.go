// Command compose-serve exposes the design-point evaluation pipeline as a
// long-lived HTTP/JSON service, so interactive tools and sweep clients
// share one process-wide cache instead of paying the full profile+score
// cost per invocation.
//
// Endpoints:
//
//	POST /evaluate      score one design point or a batch (≤256)
//	POST /explore       start an async sweep; poll GET /explore/{id}
//	GET  /healthz       liveness (503 + Retry-After while draining)
//	GET  /metrics       Prometheus text exposition
//
// Operational controls:
//
//	-checkpoint  warm-start both cache tiers from a compose-explore
//	             checkpoint and save the (grown) caches on shutdown.
//	-warm        compute the reference metrics in the background at boot,
//	             so the first request doesn't pay for them.
//	-regions     serve only the first N suite regions (CI smoke runs).
//
// SIGTERM/SIGINT drains gracefully: in-flight requests complete, new ones
// get 503 + Retry-After, then the caches are checkpointed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"compisa/internal/explore"
	"compisa/internal/par"
	"compisa/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "max concurrent evaluations (0 = one per CPU)")
	queue := flag.Int("queue", 0, "max evaluations waiting for a worker before 429 (0 = 4x workers)")
	timeout := flag.Duration("timeout", 2*time.Minute, "server-side deadline per design-point evaluation")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: warm-start caches from it, save them back on shutdown")
	regions := flag.Int("regions", 0, "serve only the first N suite regions (0 = full suite)")
	verify := flag.Bool("verify", true, "statically verify compiled regions against their feature sets")
	warm := flag.Bool("warm", false, "compute reference metrics in the background at startup")
	stats := flag.Bool("stats", false, "print evaluation pipeline statistics on exit")
	flag.Parse()
	log.SetFlags(0)

	if err := run(*addr, *workers, *queue, *timeout, *drainTimeout, *checkpoint, *regions, *verify, *warm, *stats); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, workers, queue int, timeout, drainTimeout time.Duration,
	checkpoint string, regions int, verify, warm, stats bool) error {
	db := explore.NewDB()
	db.Verify = verify
	db.Log = func(format string, args ...any) { log.Printf(format, args...) }
	if regions > 0 && regions < len(db.Regions) {
		db.Regions = db.Regions[:regions]
	}

	if checkpoint != "" {
		st, err := explore.LoadCheckpoint(checkpoint)
		if err != nil {
			return err
		}
		if st != nil {
			st.RestoreDB(db)
			log.Printf("[warm-started from %s: %d ISA profile sets, %d candidates]",
				checkpoint, len(st.Profiles), len(st.Candidates))
		}
	}

	if workers <= 0 {
		workers = par.DefaultLimit()
	}
	srv := serve.New(db, serve.Config{
		Workers: workers, Queue: queue, Timeout: timeout,
		EvalStats: &db.Stats,
		Log:       func(format string, args ...any) { log.Printf(format, args...) },
	})
	srv.MarkEvaluated(db.CandidateKeys()...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if warm {
		go func() {
			if _, err := db.ReferenceMetrics(ctx); err != nil && ctx.Err() == nil {
				log.Printf("warm reference metrics: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Printed for humans and for scripts that booted with :0.
	fmt.Fprintf(os.Stderr, "listening on http://%s (%d regions, %d workers)\n",
		ln.Addr(), len(db.Regions), workers)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("[shutting down: draining up to %s]", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	if checkpoint != "" {
		if err := explore.SaveCheckpoint(checkpoint, explore.Snapshot(db, nil)); err != nil {
			log.Printf("checkpoint: %v", err)
		} else {
			log.Printf("[caches saved to %s]", checkpoint)
		}
	}
	if stats {
		fmt.Fprint(os.Stderr, db.Stats.Snapshot().Format())
	}
	return nil
}
