// Command compose-cc compiles a benchmark region for a chosen composite
// feature set and prints the generated code and compilation statistics.
//
// Usage:
//
//	compose-cc -region hmmer.0 -complexity microx86 -width 32 -depth 64 -pred full [-asm]
package main

import (
	"flag"
	"fmt"
	"log"

	"compisa/internal/compiler"
	"compisa/internal/isa"
	"compisa/internal/workload"
)

func main() {
	region := flag.String("region", "hmmer.0", "region name (see -list)")
	list := flag.Bool("list", false, "list all regions and exit")
	complexity := flag.String("complexity", "x86", "x86 | microx86")
	width := flag.Int("width", 64, "register width: 32 | 64")
	depth := flag.Int("depth", 16, "register depth: 8 | 16 | 32 | 64")
	pred := flag.String("pred", "partial", "partial | full")
	target := flag.String("target", "", "guest-ISA encoding target: x86 | alpha64 (empty = x86)")
	asm := flag.Bool("asm", false, "dump the generated machine code")
	flag.Parse()

	if *list {
		for _, r := range workload.Regions() {
			fmt.Printf("%-10s weight %.2f\n", r.Name, r.Weight)
		}
		return
	}

	c := isa.FullX86
	if *complexity == "microx86" {
		c = isa.MicroX86
	}
	p := isa.PartialPredication
	if *pred == "full" {
		p = isa.FullPredication
	}
	fs, err := isa.New(c, *width, *depth, p)
	if err != nil {
		log.Fatal(err)
	}

	var reg *workload.Region
	for _, r := range workload.Regions() {
		if r.Name == *region {
			rr := r
			reg = &rr
		}
	}
	if reg == nil {
		log.Fatalf("unknown region %q (use -list)", *region)
	}

	f, _, err := reg.Build(fs.Width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region %s for %s\n", reg.Name, fs.Name())
	fmt.Printf("IR: %d blocks, %d virtual registers, max live pressure %d int / %d fp\n",
		len(f.Blocks), f.NumVRegs(), f.MaxLivePressure(false), f.MaxLivePressure(true))

	prog, err := compiler.Compile(f, fs, compiler.Options{Target: *target})
	if err != nil {
		log.Fatal(err)
	}
	st := prog.Stats
	tgt, err := isa.ResolveTarget(*target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("code: %d instructions, %d bytes (%s encoding)\n", len(prog.Instrs), prog.Size, tgt.Name)
	fmt.Printf("stats: %d spill stores, %d refill loads, %d remats, %d if-conversions,\n",
		st.SpillStores, st.RefillLoads, st.Remats, st.IfConversions)
	fmt.Printf("       %d vector loops, %d scalarized loops, %d folded loads\n",
		st.VectorLoops, st.ScalarLoops, st.FoldedLoads)
	if *asm {
		fmt.Println(prog)
	}
}
