// Command compose-migrate compiles a region for a source feature set,
// binary-translates it for a downgrade target, runs both on the same core,
// and reports the emulation cost — one cell of Figure 14.
//
// Usage:
//
//	compose-migrate -region hmmer.0 -from-depth 64 -to-depth 16
package main

import (
	"flag"
	"fmt"
	"log"

	"compisa/internal/code"
	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/migrate"
	"compisa/internal/workload"
)

func parseFS(complexity string, width, depth int, pred string) isa.FeatureSet {
	c := isa.FullX86
	if complexity == "microx86" {
		c = isa.MicroX86
	}
	p := isa.PartialPredication
	if pred == "full" {
		p = isa.FullPredication
	}
	fs, err := isa.New(c, width, depth, p)
	if err != nil {
		log.Fatal(err)
	}
	return fs
}

func main() {
	region := flag.String("region", "hmmer.0", "region name")
	fromCplx := flag.String("from-complexity", "microx86", "x86 | microx86")
	fromWidth := flag.Int("from-width", 32, "source register width")
	fromDepth := flag.Int("from-depth", 64, "source register depth")
	fromPred := flag.String("from-pred", "partial", "partial | full")
	toCplx := flag.String("to-complexity", "microx86", "x86 | microx86")
	toWidth := flag.Int("to-width", 32, "target register width")
	toDepth := flag.Int("to-depth", 16, "target register depth")
	toPred := flag.String("to-pred", "partial", "partial | full")
	fromTarget := flag.String("from-target", "", "source core's guest-ISA encoding (x86 | alpha64; empty = x86)")
	toTarget := flag.String("to-target", "", "destination core's guest-ISA encoding (x86 | alpha64; empty = x86)")
	flag.Parse()

	src := parseFS(*fromCplx, *fromWidth, *fromDepth, *fromPred)
	dst := parseFS(*toCplx, *toWidth, *toDepth, *toPred)
	fromTgt, err := isa.ResolveTarget(*fromTarget)
	if err != nil {
		log.Fatal(err)
	}
	toTgt, err := isa.ResolveTarget(*toTarget)
	if err != nil {
		log.Fatal(err)
	}

	var reg *workload.Region
	for _, r := range workload.Regions() {
		if r.Name == *region {
			rr := r
			reg = &rr
		}
	}
	if reg == nil {
		log.Fatalf("unknown region %q", *region)
	}

	f, _, err := reg.Build(src.Width)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := compiler.Compile(f, src, compiler.Options{Target: *fromTarget})
	if err != nil {
		log.Fatal(err)
	}
	prog.Name = reg.Name

	// Cross-encoding migrations pay a one-time binary-translation and
	// state-transformation latency on top of (and independent of) any
	// feature-set downgrade cost; it is priced from the measured code size
	// of the source encoding and the targets' register-file geometries.
	printCrossISA := func() {
		if fromTgt.Name == toTgt.Name {
			fmt.Printf("cross-ISA: none (both cores fetch the %s encoding)\n", fromTgt.Name)
			return
		}
		c := migrate.MigrationCost(prog, toTgt)
		fmt.Printf("cross-ISA %s -> %s: %d cycles one-time migration latency (%.1f us at 3 GHz)\n",
			fromTgt.Name, toTgt.Name, c.Total(), float64(c.Total())/3000)
		fmt.Printf("  translation %d cycles (%d code bytes measured in the %s encoding)\n",
			c.TranslationCycles, prog.Size, fromTgt.Name)
		fmt.Printf("  state       %d cycles (union register file)\n", c.StateCycles)
		fmt.Printf("  runtime     %d cycles fixed handoff\n", c.FixedCycles)
	}

	if dst.Subsumes(src) {
		fmt.Printf("%s -> %s is an upgrade: native execution, zero translation cost\n",
			src.Name(), dst.Name())
		printCrossISA()
		return
	}
	fmt.Printf("downgrades required: %v\n", isa.Downgrades(src, dst))

	trans, err := migrate.Translate(prog, dst)
	if err != nil {
		log.Fatal(err)
	}

	cfg := cpu.CoreConfig{
		OoO: true, Width: 2, Predictor: cpu.PredTournament,
		IQ: 32, ROB: 64, PRFInt: 96, PRFFP: 64,
		IntALU: 3, IntMul: 1, FPALU: 2, LSQ: 16,
		L1I: cpu.L1Cfg32k, L1D: cpu.L1Cfg32k, L2: cpu.L2Cfg4M,
		UopCache: true, Fusion: true,
	}
	run := func(p *code.Program) (uint64, int64) {
		_, m, err := reg.Build(src.Width)
		if err != nil {
			log.Fatal(err)
		}
		exec, timing, err := cpu.RunTimed(p, cpu.NewState(m), cfg, 100_000_000)
		if err != nil {
			log.Fatal(err)
		}
		return exec.Ret, timing.Cycles
	}
	sumA, cycA := run(prog)
	sumB, cycB := run(trans)
	if sumA != sumB {
		log.Fatalf("translation changed the checksum: %#x vs %#x", sumA, sumB)
	}
	fmt.Printf("%s: %s (%d instrs) -> %s (%d instrs)\n",
		reg.Name, src.ShortName(), len(prog.Instrs), dst.ShortName(), len(trans.Instrs))
	fmt.Printf("checksum %#x preserved\n", sumA)
	fmt.Printf("cycles: native %d, translated %d => %+.1f%% emulation cost\n",
		cycA, cycB, 100*(float64(cycB)/float64(cycA)-1))
	printCrossISA()
}
