// Command compose-explore runs the paper's experiments and prints each
// table/figure as text. Experiments: sec3, fig2, fig5, fig6, fig7, fig8,
// table3, table4, fig9, fig10, fig11, fig12, fig13, fig14, fig15, or all.
//
// Robustness controls:
//
//	-timeout     bounds the whole run; on expiry the run stops with a
//	             saved checkpoint instead of hanging.
//	-checkpoint  persists the profile cache and search frontier; an
//	             interrupted run resumes from where it stopped. A corrupt
//	             file is quarantined to <path>.corrupt and the run starts
//	             cold (-checkpoint-strict fails instead).
//	-store       crash-safe append-only candidate store: evaluations are
//	             written through as they complete (durable mid-run, not
//	             only at checkpoint boundaries) and reloaded at startup.
//	-inject-*    deterministically inject evaluation faults to exercise
//	             the retry/quarantine machinery.
//	-stats       print evaluation-pipeline statistics on exit: per-stage
//	             counts and timings plus cache hit rates per tier.
//	-jit         JIT-compile region programs to native code on supported
//	             hosts (linux/amd64); results are identical to the
//	             interpreter's, the cold exec stage just runs faster.
//	-cpuprofile  write a CPU profile for the whole run (pprof format).
//	-memprofile  write a heap profile at normal exit (after a final GC).
//
// Failing (region, ISA) pairs are quarantined and scored at a documented
// penalty; the run completes and the coverage summary reports them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"compisa/internal/eval"
	"compisa/internal/explore"
	"compisa/internal/fault"
	"compisa/internal/jit"
	"compisa/internal/store"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run (sec3, fig2, fig5..fig15, table3, table4, all)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: resume from it if present, save to it as searches complete")
	checkpointStrict := flag.Bool("checkpoint-strict", false, "fail on a corrupt checkpoint instead of quarantining it and starting cold")
	storePath := flag.String("store", "", "crash-safe candidate store: reload from it, write evaluations through as they complete")
	storeSyncEvery := flag.Int("store-sync-every", 1, "group-commit boundary: fsync the store every N appended records")
	injectRate := flag.Float64("inject-rate", 0, "fault injection rate in [0,1] (0 = no injection)")
	injectSeed := flag.Uint64("inject-seed", 1, "fault injection seed (same seed => same faults)")
	injectKinds := flag.String("inject-kinds", "", "comma-separated fault kinds to inject (compile,runaway,corrupt,slow,badcode); empty = all default kinds")
	injectTransient := flag.Float64("inject-transient", 0, "fraction of injected faults that clear on the first retry")
	stats := flag.Bool("stats", false, "print evaluation pipeline statistics (stage counts, timings, cache hit rates) on exit")
	verify := flag.Bool("verify", true, "statically verify every compiled region conforms to its feature set before execution")
	useJIT := flag.Bool("jit", false, "JIT-compile region programs to native code (linux/amd64; elsewhere the interpreter runs as usual)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at normal exit")
	flag.Parse()

	log.SetFlags(0)
	start := time.Now()

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	// Profiles are finalized here, so they are only complete on a normal
	// exit (log.Fatal paths skip deferred calls).
	defer stopProfiles()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	db := explore.NewDB()
	db.Verify = *verify
	db.Log = func(format string, args ...any) { log.Printf(format, args...) }
	if *useJIT {
		if !jit.Available() {
			log.Print("[-jit requested but native execution is unavailable on this platform; using the interpreter]")
		}
		db.JIT = jit.New(jit.Config{})
	}
	// Validate the kind list even when no rate is set, so a typoed
	// -inject-kinds fails loudly instead of being silently ignored.
	kinds, err := fault.ParseKinds(*injectKinds)
	if err != nil {
		log.Fatal(err)
	}
	if *injectRate > 0 {
		inj, err := fault.NewInjector(fault.Config{
			Seed: *injectSeed, Rate: *injectRate,
			Kinds: kinds, TransientFrac: *injectTransient,
		})
		if err != nil {
			log.Fatal(err)
		}
		db.Inject = inj
	}

	var cpState *explore.CheckpointState
	if *checkpoint != "" {
		var st *explore.CheckpointState
		var err error
		if *checkpointStrict {
			st, err = explore.LoadCheckpoint(*checkpoint)
		} else {
			var quarantined string
			st, quarantined, err = explore.RecoverCheckpoint(*checkpoint)
			if quarantined != "" {
				fmt.Fprintf(os.Stderr, "[corrupt checkpoint quarantined to %s; starting cold]\n", quarantined)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		if st != nil {
			st.RestoreDB(db)
			fmt.Fprintf(os.Stderr, "[resumed from %s: %d ISA profile sets, %d candidates, %d searches]\n",
				*checkpoint, len(st.Profiles), len(st.Candidates), len(st.Frontier))
		}
		cpState = st
	}

	// The durable candidate store is optional and advisory: if it cannot
	// open, the run proceeds memory-only (a checkpoint still captures
	// results). With the default -store-sync-every=1 every acknowledged
	// write is already fsynced, so skipping Close on a fatal exit loses
	// nothing.
	if *storePath != "" {
		cs, err := store.Open(*storePath, store.Options{
			SyncEvery: *storeSyncEvery,
			Log:       func(format string, args ...any) { log.Printf(format, args...) },
		})
		if err != nil {
			log.Printf("[store %s unavailable, running memory-only: %v]", *storePath, err)
		} else {
			defer cs.Close()
			adapter := &eval.CandidateStore{S: cs}
			loaded, skipped, lerr := adapter.LoadInto(db)
			if lerr != nil {
				log.Printf("[store warm-start: %v]", lerr)
			} else if loaded > 0 || skipped > 0 {
				fmt.Fprintf(os.Stderr, "[reloaded %d candidates from store %s (%d skipped)]\n",
					loaded, *storePath, skipped)
			}
			db.Persist = adapter
		}
	}

	s, err := explore.NewSearcher(ctx, db)
	if err != nil {
		log.Fatal(err)
	}
	cpState.RestoreSearcher(s)
	save := func() {
		if *checkpoint == "" {
			return
		}
		if err := explore.SaveCheckpoint(*checkpoint, explore.Snapshot(db, s)); err != nil {
			log.Printf("checkpoint: %v", err)
		}
	}
	s.OnSearchDone = save

	report := func() {
		if *stats {
			fmt.Fprint(os.Stderr, db.StatsSnapshot().Format())
		}
		cov := db.Coverage()
		if len(cov.Quarantined) == 0 && db.Inject == nil {
			return
		}
		fmt.Fprintf(os.Stderr, "[coverage: %s]\n", cov)
		for _, q := range cov.Quarantined {
			fmt.Fprintf(os.Stderr, "[quarantined %s on %s: %s]\n", q.Region, q.ISA, q.Reason)
		}
	}

	ran := false
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		ran = true
		t0 := time.Now()
		if err := fn(); err != nil {
			save()
			report()
			if ctx.Err() != nil {
				log.Fatalf("%s: interrupted (%v); checkpoint saved, rerun to resume", name, err)
			}
			log.Fatalf("%s: %v", name, err)
		}
		save()
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("sec3", func() error {
		d, err := explore.Sec3CodegenDeltas(ctx, db)
		if err != nil {
			return err
		}
		fmt.Println(d.Format())
		return nil
	})
	run("fig2", func() error {
		f, err := explore.Fig2InstructionMix(ctx, db)
		if err != nil {
			return err
		}
		fmt.Println(f.Format())
		return nil
	})
	run("fig5", func() error {
		budgets := append(append([]explore.Budget{}, explore.MPPowerBudgets...), explore.AreaBudgets...)
		r, err := s.Sweep(ctx, explore.ObjMPThroughput, budgets)
		if err != nil {
			return err
		}
		fmt.Println(r.Format("Figure 5: multi-programmed throughput (relative to homogeneous; higher is better)"))
		return nil
	})
	run("fig6", func() error {
		budgets := append(append([]explore.Budget{}, explore.MPPowerBudgets...), explore.AreaBudgets...)
		r, err := s.Sweep(ctx, explore.ObjMPEDP, budgets)
		if err != nil {
			return err
		}
		fmt.Println(r.Format("Figure 6: multi-programmed EDP (relative to homogeneous; lower is better)"))
		return nil
	})
	run("fig7", func() error {
		r, err := s.Sweep(ctx, explore.ObjSTPerf, explore.STPowerBudgets)
		if err != nil {
			return err
		}
		fmt.Println(r.Format("Figure 7a: single-thread performance under peak power budgets"))
		r2, err := s.Sweep(ctx, explore.ObjSTEDP, explore.STPowerBudgets)
		if err != nil {
			return err
		}
		fmt.Println(r2.Format("Figure 7b: single-thread EDP under peak power budgets (lower is better)"))
		return nil
	})
	run("fig8", func() error {
		r, err := s.Sweep(ctx, explore.ObjSTPerf, explore.AreaBudgets)
		if err != nil {
			return err
		}
		fmt.Println(r.Format("Figure 8a: single-thread performance under area budgets"))
		r2, err := s.Sweep(ctx, explore.ObjSTEDP, explore.AreaBudgets)
		if err != nil {
			return err
		}
		fmt.Println(r2.Format("Figure 8b: single-thread EDP under area budgets (lower is better)"))
		return nil
	})
	run("table3", func() error {
		t, err := s.OptimalDesignTable(ctx, explore.ObjMPThroughput, explore.MPPowerBudgets)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("table4", func() error {
		t, err := s.OptimalDesignTable(ctx, explore.ObjMPEDP, explore.MPPowerBudgets)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	var fig9 *explore.Fig9Result
	run("fig9", func() error {
		r, err := s.Fig9FeatureSensitivity(ctx)
		if err != nil {
			return err
		}
		fig9 = r
		fmt.Println(r.Format())
		return nil
	})
	run("fig10", func() error {
		if fig9 == nil {
			r, err := s.Fig9FeatureSensitivity(ctx)
			if err != nil {
				return err
			}
			fig9 = r
		}
		var rows []explore.StageBreakdown
		for _, row := range fig9.Rows {
			if row.CMP.Cores[0] == nil {
				continue
			}
			rows = append(rows, explore.AreaBreakdown(row.Constraint, row.CMP))
		}
		rows = append(rows, explore.AreaBreakdown("full diversity", fig9.Unconstrained))
		fmt.Println(explore.FormatBreakdowns(
			"Figure 10: transistor investment by processor area (normalized to full diversity, caches excluded)", rows))
		return nil
	})
	run("fig11", func() error {
		if fig9 == nil {
			r, err := s.Fig9FeatureSensitivity(ctx)
			if err != nil {
				return err
			}
			fig9 = r
		}
		var rows []explore.StageBreakdown
		for _, row := range fig9.Rows {
			if row.CMP.Cores[0] == nil {
				continue
			}
			b, err := explore.EnergyBreakdown(ctx, row.Constraint, row.CMP, db)
			if err != nil {
				return err
			}
			rows = append(rows, b)
		}
		b, err := explore.EnergyBreakdown(ctx, "full diversity", fig9.Unconstrained, db)
		if err != nil {
			return err
		}
		rows = append(rows, b)
		fmt.Println(explore.FormatBreakdowns(
			"Figure 11: processor energy breakdown (normalized to full diversity, caches excluded)", rows))
		return nil
	})
	run("fig12", func() error {
		a, err := s.Fig12AffinitySingleThread(ctx)
		if err != nil {
			return err
		}
		fmt.Println(a.Format())
		return nil
	})
	run("fig13", func() error {
		a, err := s.Fig13AffinityMultiprogrammed(ctx)
		if err != nil {
			return err
		}
		fmt.Println(a.Format())
		return nil
	})
	var fig14 *explore.Fig14Result
	run("fig14", func() error {
		r, err := explore.Fig14DowngradeCost(ctx, db.Regions)
		if err != nil {
			return err
		}
		fig14 = r
		fmt.Println(r.Format())
		return nil
	})
	run("fig15", func() error {
		if fig14 == nil {
			r, err := explore.Fig14DowngradeCost(ctx, db.Regions)
			if err != nil {
				return err
			}
			fig14 = r
		}
		r, err := s.Fig15MigrationOverhead(ctx, explore.Budget{AreaMM2: 48}, fig14)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	})
	if !ran {
		log.Fatalf("unknown experiment %q (want sec3, fig2, fig5..fig15, table3, table4, or all)", *exp)
	}
	save()
	report()
	fmt.Fprintf(os.Stderr, "[total %v]\n", time.Since(start).Round(time.Millisecond))
}

// startProfiles enables CPU and/or heap profiling per the -cpuprofile and
// -memprofile flags. The returned stop function flushes the CPU profile and
// captures the heap profile (after a final GC, so the snapshot reflects live
// objects rather than garbage awaiting collection).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				log.Printf("cpuprofile: %v", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}
	}, nil
}
