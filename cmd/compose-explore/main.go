// Command compose-explore runs the paper's experiments and prints each
// table/figure as text. Experiments: sec3, fig2, fig5, fig6, fig7, fig8,
// table3, table4, fig9, fig10, fig11, fig12, fig13, fig14, fig15, or all.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"compisa/internal/explore"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run (sec3, fig2, fig5..fig15, table3, table4, all)")
	flag.Parse()

	log.SetFlags(0)
	start := time.Now()
	db := explore.NewDB()
	s, err := explore.NewSearcher(db)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		t0 := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("sec3", func() error {
		d, err := db.Sec3CodegenDeltas()
		if err != nil {
			return err
		}
		fmt.Println(d.Format())
		return nil
	})
	run("fig2", func() error {
		f, err := db.Fig2InstructionMix()
		if err != nil {
			return err
		}
		fmt.Println(f.Format())
		return nil
	})
	run("fig5", func() error {
		budgets := append(append([]explore.Budget{}, explore.MPPowerBudgets...), explore.AreaBudgets...)
		r, err := s.Sweep(explore.ObjMPThroughput, budgets)
		if err != nil {
			return err
		}
		fmt.Println(r.Format("Figure 5: multi-programmed throughput (relative to homogeneous; higher is better)"))
		return nil
	})
	run("fig6", func() error {
		budgets := append(append([]explore.Budget{}, explore.MPPowerBudgets...), explore.AreaBudgets...)
		r, err := s.Sweep(explore.ObjMPEDP, budgets)
		if err != nil {
			return err
		}
		fmt.Println(r.Format("Figure 6: multi-programmed EDP (relative to homogeneous; lower is better)"))
		return nil
	})
	run("fig7", func() error {
		r, err := s.Sweep(explore.ObjSTPerf, explore.STPowerBudgets)
		if err != nil {
			return err
		}
		fmt.Println(r.Format("Figure 7a: single-thread performance under peak power budgets"))
		r2, err := s.Sweep(explore.ObjSTEDP, explore.STPowerBudgets)
		if err != nil {
			return err
		}
		fmt.Println(r2.Format("Figure 7b: single-thread EDP under peak power budgets (lower is better)"))
		return nil
	})
	run("fig8", func() error {
		r, err := s.Sweep(explore.ObjSTPerf, explore.AreaBudgets)
		if err != nil {
			return err
		}
		fmt.Println(r.Format("Figure 8a: single-thread performance under area budgets"))
		r2, err := s.Sweep(explore.ObjSTEDP, explore.AreaBudgets)
		if err != nil {
			return err
		}
		fmt.Println(r2.Format("Figure 8b: single-thread EDP under area budgets (lower is better)"))
		return nil
	})
	run("table3", func() error {
		t, err := s.OptimalDesignTable(explore.ObjMPThroughput, explore.MPPowerBudgets)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("table4", func() error {
		t, err := s.OptimalDesignTable(explore.ObjMPEDP, explore.MPPowerBudgets)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	var fig9 *explore.Fig9Result
	run("fig9", func() error {
		r, err := s.Fig9FeatureSensitivity()
		if err != nil {
			return err
		}
		fig9 = r
		fmt.Println(r.Format())
		return nil
	})
	run("fig10", func() error {
		if fig9 == nil {
			r, err := s.Fig9FeatureSensitivity()
			if err != nil {
				return err
			}
			fig9 = r
		}
		var rows []explore.StageBreakdown
		for _, row := range fig9.Rows {
			if row.CMP.Cores[0] == nil {
				continue
			}
			rows = append(rows, explore.AreaBreakdown(row.Constraint, row.CMP))
		}
		rows = append(rows, explore.AreaBreakdown("full diversity", fig9.Unconstrained))
		fmt.Println(explore.FormatBreakdowns(
			"Figure 10: transistor investment by processor area (normalized to full diversity, caches excluded)", rows))
		return nil
	})
	run("fig11", func() error {
		if fig9 == nil {
			r, err := s.Fig9FeatureSensitivity()
			if err != nil {
				return err
			}
			fig9 = r
		}
		var rows []explore.StageBreakdown
		for _, row := range fig9.Rows {
			if row.CMP.Cores[0] == nil {
				continue
			}
			b, err := explore.EnergyBreakdown(row.Constraint, row.CMP, db)
			if err != nil {
				return err
			}
			rows = append(rows, b)
		}
		b, err := explore.EnergyBreakdown("full diversity", fig9.Unconstrained, db)
		if err != nil {
			return err
		}
		rows = append(rows, b)
		fmt.Println(explore.FormatBreakdowns(
			"Figure 11: processor energy breakdown (normalized to full diversity, caches excluded)", rows))
		return nil
	})
	run("fig12", func() error {
		a, err := s.Fig12AffinitySingleThread()
		if err != nil {
			return err
		}
		fmt.Println(a.Format())
		return nil
	})
	run("fig13", func() error {
		a, err := s.Fig13AffinityMultiprogrammed()
		if err != nil {
			return err
		}
		fmt.Println(a.Format())
		return nil
	})
	var fig14 *explore.Fig14Result
	run("fig14", func() error {
		r, err := explore.Fig14DowngradeCost(db.Regions)
		if err != nil {
			return err
		}
		fig14 = r
		fmt.Println(r.Format())
		return nil
	})
	run("fig15", func() error {
		if fig14 == nil {
			r, err := explore.Fig14DowngradeCost(db.Regions)
			if err != nil {
				return err
			}
			fig14 = r
		}
		r, err := s.Fig15MigrationOverhead(explore.Budget{AreaMM2: 48}, fig14)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	})
	fmt.Fprintf(os.Stderr, "[total %v]\n", time.Since(start).Round(time.Millisecond))
}
