// Command compose-lint runs the machine-code conformance verifier
// (internal/check) over a benchmark × feature-set matrix, printing every
// finding with its rule ID, PC, and disassembly context. It is the
// standalone face of the verification layer the compiler and the evaluation
// pipeline embed: CI runs it across all 26 feature sets to prove the
// compiler emits only legal code, and -mutate turns it into a
// detection-power report for the seeded mutation harness.
//
// Usage:
//
//	compose-lint                         # all 26 feature sets x all 49 regions
//	compose-lint -bench hmmer            # one benchmark
//	compose-lint -region sjeng.0 -fs ux86-8D-32W-P
//	compose-lint -rules depth,udef       # restrict the rule set
//	compose-lint -mutate -seed 7         # mutation-detection matrix
//	compose-lint -facts -region hmmer.0  # analysis-engine Facts as JSON
//	compose-lint -json > findings.json
//
// Exit status: 0 when every analyzed program is clean (or, under -mutate,
// every applicable mutation class is detected); 1 otherwise; 2 on usage
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"compisa/internal/check"
	"compisa/internal/code"
	"compisa/internal/compiler"
	"compisa/internal/isa"
	"compisa/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("compose-lint: ")
	bench := flag.String("bench", "", "restrict to one benchmark (e.g. hmmer)")
	region := flag.String("region", "", "restrict to one region (e.g. hmmer.0)")
	fsName := flag.String("fs", "", "restrict to one feature set by short name (e.g. ux86-8D-32W-P)")
	target := flag.String("target", "", "guest-ISA encoding target: x86 | alpha64 (empty = x86); restricted targets drop unsupported feature sets")
	rules := flag.String("rules", "", "comma-separated rule IDs to run (default: all)")
	compact := flag.Bool("compact", false, "lay programs out under the compact superset encoding")
	mutate := flag.Bool("mutate", false, "run the seeded mutation harness and report detection power")
	facts := flag.Bool("facts", false, "emit the analysis engine's per-region Facts (loops, dominators, guards, consts) as JSON")
	seed := flag.Uint64("seed", 1, "mutation seed (with -mutate)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	quiet := flag.Bool("quiet", false, "print only the summary line")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	regions, err := selectRegions(*bench, *region)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	sets, err := selectFeatureSets(*fsName)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	tgt, err := isa.ResolveTarget(*target)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	if !tgt.Default() {
		// Restricted targets encode a subset of the composite matrix; lint
		// the sets they support rather than failing on the rest. An
		// explicitly requested -fs outside the envelope still errors below.
		var kept []isa.FeatureSet
		for _, fs := range sets {
			if serr := tgt.SupportsFS(fs); serr != nil {
				if *fsName != "" {
					log.Printf("feature set %s: %v", fs.ShortName(), serr)
					os.Exit(2)
				}
				continue
			}
			kept = append(kept, fs)
		}
		sets = kept
		if len(sets) == 0 {
			log.Printf("target %s supports none of the selected feature sets", tgt.Name)
			os.Exit(2)
		}
	}
	var ruleIDs []string
	if *rules != "" {
		known := map[string]bool{}
		for _, id := range check.RuleIDs() {
			known[id] = true
		}
		for _, id := range strings.Split(*rules, ",") {
			id = strings.TrimSpace(id)
			if !known[id] {
				log.Printf("unknown rule %q (known: %s)", id, strings.Join(check.RuleIDs(), ", "))
				os.Exit(2)
			}
			ruleIDs = append(ruleIDs, id)
		}
	}

	if *mutate {
		os.Exit(runMutate(regions, sets, *target, *seed, *compact, *jsonOut, *quiet))
	}
	if *facts {
		os.Exit(runFacts(regions, sets, *target, *compact))
	}
	os.Exit(runLint(regions, sets, ruleIDs, *target, *compact, *jsonOut, *quiet))
}

func selectRegions(bench, region string) ([]workload.Region, error) {
	all := workload.Regions()
	if region != "" {
		for _, r := range all {
			if r.Name == region {
				return []workload.Region{r}, nil
			}
		}
		return nil, fmt.Errorf("unknown region %q", region)
	}
	if bench != "" {
		b, err := workload.ByName(bench)
		if err != nil {
			return nil, fmt.Errorf("%w (known: %s)", err, strings.Join(workload.Names(), ", "))
		}
		return b.Regions, nil
	}
	return all, nil
}

func selectFeatureSets(name string) ([]isa.FeatureSet, error) {
	all := isa.Derive()
	if name == "" {
		return all, nil
	}
	var names []string
	for _, fs := range all {
		if fs.ShortName() == name {
			return []isa.FeatureSet{fs}, nil
		}
		names = append(names, fs.ShortName())
	}
	return nil, fmt.Errorf("unknown feature set %q (known: %s)", name, strings.Join(names, ", "))
}

func compile(r workload.Region, fs isa.FeatureSet, target string, compact bool) (*code.Program, error) {
	f, _, err := r.Build(fs.Width)
	if err != nil {
		return nil, fmt.Errorf("%s for %s: build: %w", r.Name, fs.ShortName(), err)
	}
	// The lint IS the verification; run the compiler without its own gate.
	prog, err := compiler.Compile(f, fs, compiler.Options{
		Target: target, CompactEncoding: compact, Verify: compiler.VerifyOff,
	})
	if err != nil {
		return nil, fmt.Errorf("%s for %s: compile: %w", r.Name, fs.ShortName(), err)
	}
	prog.Name = r.Name
	return prog, nil
}

func runLint(regions []workload.Region, sets []isa.FeatureSet, ruleIDs []string, target string, compact, jsonOut, quiet bool) int {
	var reports []*check.Report
	programs, findings := 0, 0
	for _, fs := range sets {
		for _, r := range regions {
			prog, err := compile(r, fs, target, compact)
			if err != nil {
				log.Println(err)
				return 1
			}
			programs++
			rep := check.AnalyzeOpts(prog, check.Options{Rules: ruleIDs})
			if len(rep.Findings) > 0 {
				findings += len(rep.Findings)
				reports = append(reports, rep)
			}
		}
	}
	if jsonOut {
		out := struct {
			Programs int             `json:"programs"`
			Findings int             `json:"findings"`
			Reports  []*check.Report `json:"reports"`
		}{programs, findings, reports}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Println(err)
			return 1
		}
	} else {
		if !quiet {
			for _, rep := range reports {
				fmt.Print(rep.String())
			}
		}
		fmt.Printf("compose-lint: %d program(s) analyzed (%d feature set(s) x %d region(s)), %d finding(s)\n",
			programs, len(sets), len(regions), findings)
	}
	if findings > 0 {
		return 1
	}
	return 0
}

// runFacts prints the analysis engine's Facts for every selected (feature
// set, region) pair as a JSON array. The encoding is deliberately map-free
// and the iteration order fixed, so the output is byte-identical across
// runs — downstream consumers may cache and diff it.
func runFacts(regions []workload.Region, sets []isa.FeatureSet, target string, compact bool) int {
	var all []*check.Facts
	for _, fs := range sets {
		for _, r := range regions {
			prog, err := compile(r, fs, target, compact)
			if err != nil {
				log.Println(err)
				return 1
			}
			f, err := check.ComputeFacts(prog)
			if err != nil {
				log.Println(err)
				return 1
			}
			all = append(all, f)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(all); err != nil {
		log.Println(err)
		return 1
	}
	return 0
}

// mutationRow is one (feature set, region, class) detection outcome.
type mutationRow struct {
	FS      string         `json:"fs"`
	Region  string         `json:"region"`
	Class   string         `json:"class"`
	Applied bool           `json:"applied"`
	Caught  bool           `json:"caught"`
	Desc    string         `json:"desc,omitempty"`
	Rules   map[string]int `json:"rules,omitempty"`
}

func runMutate(regions []workload.Region, sets []isa.FeatureSet, target string, seed uint64, compact, jsonOut, quiet bool) int {
	var rows []mutationRow
	applied, caught := 0, 0
	for _, fs := range sets {
		for _, r := range regions {
			prog, err := compile(r, fs, target, compact)
			if err != nil {
				log.Println(err)
				return 1
			}
			for _, d := range check.MutationSweep(prog, seed) {
				rows = append(rows, mutationRow{
					FS: fs.ShortName(), Region: r.Name, Class: d.Class,
					Applied: d.Applied, Caught: d.Caught, Desc: d.Desc, Rules: d.Rules,
				})
				if d.Applied {
					applied++
					if d.Caught {
						caught++
					}
				}
			}
		}
	}
	if jsonOut {
		out := struct {
			Seed    uint64        `json:"seed"`
			Applied int           `json:"applied"`
			Caught  int           `json:"caught"`
			Rows    []mutationRow `json:"rows"`
		}{seed, applied, caught, rows}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Println(err)
			return 1
		}
	} else {
		if !quiet {
			for _, row := range rows {
				switch {
				case !row.Applied:
					fmt.Printf("  n/a    %-22s %-12s %s\n", row.FS, row.Region, row.Class)
				case row.Caught:
					fmt.Printf("  CAUGHT %-22s %-12s %-10s %s\n", row.FS, row.Region, row.Class, row.Desc)
				default:
					fmt.Printf("  MISSED %-22s %-12s %-10s %s (findings: %v)\n",
						row.FS, row.Region, row.Class, row.Desc, row.Rules)
				}
			}
		}
		fmt.Printf("compose-lint: mutation detection %d/%d (seed %d)\n", caught, applied, seed)
	}
	if caught != applied {
		return 1
	}
	return 0
}
