// Command compose-sim compiles a benchmark region for a composite feature
// set and runs it on a detailed core model, printing execution and timing
// statistics.
//
// Usage:
//
//	compose-sim -region sjeng.0 -complexity microx86 -width 32 -depth 16 \
//	    -pred full -ooo -issue 2 -predictor tournament
package main

import (
	"flag"
	"fmt"
	"log"

	"compisa/internal/compiler"
	"compisa/internal/cpu"
	"compisa/internal/isa"
	"compisa/internal/workload"
)

func main() {
	region := flag.String("region", "sjeng.0", "region name")
	complexity := flag.String("complexity", "x86", "x86 | microx86")
	width := flag.Int("width", 64, "register width: 32 | 64")
	depth := flag.Int("depth", 16, "register depth: 8 | 16 | 32 | 64")
	pred := flag.String("pred", "partial", "partial | full")
	ooo := flag.Bool("ooo", true, "out-of-order execution")
	issue := flag.Int("issue", 2, "fetch/issue width: 1 | 2 | 4")
	predictor := flag.String("predictor", "tournament", "local | gshare | tournament")
	l1 := flag.Int("l1", 32, "L1 size in KB: 32 | 64")
	l2 := flag.Int("l2", 4, "shared L2 size in MB: 4 | 8")
	flag.Parse()

	c := isa.FullX86
	if *complexity == "microx86" {
		c = isa.MicroX86
	}
	p := isa.PartialPredication
	if *pred == "full" {
		p = isa.FullPredication
	}
	fs, err := isa.New(c, *width, *depth, p)
	if err != nil {
		log.Fatal(err)
	}

	var pk cpu.PredictorKind
	switch *predictor {
	case "local":
		pk = cpu.PredLocal
	case "gshare":
		pk = cpu.PredGShare
	default:
		pk = cpu.PredTournament
	}
	l1c := cpu.L1Cfg32k
	if *l1 == 64 {
		l1c = cpu.L1Cfg64k
	}
	l2c := cpu.L2Cfg4M
	if *l2 == 8 {
		l2c = cpu.L2Cfg8M
	}
	cfg := cpu.CoreConfig{
		OoO: *ooo, Width: *issue, Predictor: pk,
		IQ: 32, ROB: 64, PRFInt: 96, PRFFP: 64,
		IntALU: 3, IntMul: 1, FPALU: 2, LSQ: 16,
		L1I: l1c, L1D: l1c, L2: l2c,
		UopCache: true, Fusion: true,
	}
	if *issue >= 4 {
		cfg.IQ, cfg.ROB, cfg.PRFInt, cfg.PRFFP = 64, 128, 192, 160
		cfg.IntALU, cfg.IntMul, cfg.FPALU, cfg.LSQ = 6, 2, 4, 32
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	var reg *workload.Region
	for _, r := range workload.Regions() {
		if r.Name == *region {
			rr := r
			reg = &rr
		}
	}
	if reg == nil {
		log.Fatalf("unknown region %q", *region)
	}

	f, m, err := reg.Build(fs.Width)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := compiler.Compile(f, fs, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prog.Name = reg.Name
	exec, timing, err := cpu.RunTimed(prog, cpu.NewState(m), cfg, 100_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s @ %s\n", reg.Name, fs.Name(), cfg.Name())
	fmt.Printf("  checksum          %#x\n", exec.Ret)
	fmt.Printf("  instructions      %d (%d micro-ops)\n", exec.Instrs, exec.Uops)
	fmt.Printf("  cycles            %d (IPC %.2f)\n", timing.Cycles, timing.IPC())
	fmt.Printf("  branches          %d (%.1f%% mispredicted, MPKI %.2f)\n",
		timing.Branches, 100*float64(timing.Mispredicts)/maxf(1, float64(timing.Branches)), timing.MPKI())
	fmt.Printf("  L1D               %d accesses, %d misses\n", timing.L1DAccesses, timing.L1DMisses)
	fmt.Printf("  L2                %d accesses, %d misses\n", timing.L2Accesses, timing.L2Misses)
	fmt.Printf("  uop cache         %.1f%% hit rate, %d decode activations\n",
		100*float64(timing.UopCacheHits)/maxf(1, float64(timing.UopCacheAccesses)), timing.DecodeActivations)
	fmt.Printf("  predicated-off    %d micro-ops\n", timing.PredOffUops)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
