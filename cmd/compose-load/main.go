// Command compose-load is a seeded closed-loop load generator for
// compose-serve: a fixed pool of workers issues single-point /evaluate
// requests drawn from a small set of distinct design points, so repeated
// points exercise the server's coalescing and cache path the way a fleet
// of sweep clients would.
//
// It reports throughput, client-side latency percentiles, per-status
// counts, and the cache-hit rate as JSON (the BENCH_serve.json artifact),
// and doubles as a CI gate: -min-hit-rate and -max-5xx turn quality floors
// into a non-zero exit status.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"compisa/internal/atomicfile"
	"compisa/internal/cpu"
	"compisa/internal/eval"
)

type pointSpec struct {
	ISA    string          `json:"isa"`
	Config *cpu.CoreConfig `json:"config,omitempty"`
}

type pointResult struct {
	MeanSpeedup float64 `json:"mean_speedup"`
	Cached      bool    `json:"cached"`
	Coalesced   bool    `json:"coalesced"`
	Error       string  `json:"error,omitempty"`
}

type evalResponse struct {
	Results []pointResult `json:"results"`
}

// sample is one completed request as the client observed it.
type sample struct {
	latency time.Duration
	status  int
	cached  bool
	warm    bool // served without a fresh evaluation (cached or coalesced)
}

// Report is the JSON artifact. WarmSpeedup is the headline number: mean
// cold (evaluating) latency over mean warm (cache/coalesce) latency.
type Report struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Points      int     `json:"points"`
	DurationS   float64 `json:"duration_s"`
	Throughput  float64 `json:"throughput_rps"`
	Latency     struct {
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
		Mean float64 `json:"mean"`
	} `json:"latency_ms"`
	Status map[string]int `json:"status"`
	Cache  struct {
		Hits    int     `json:"hits"`
		Misses  int     `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"cache"`
	ColdMSMean  float64 `json:"cold_ms_mean"`
	WarmMSMean  float64 `json:"warm_ms_mean"`
	WarmSpeedup float64 `json:"warm_speedup"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "compose-serve base URL")
	requests := flag.Int("requests", 200, "total requests to issue")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	points := flag.Int("points", 4, "distinct design points in the request mix")
	isas := flag.String("isas", "", "comma-separated ISA choice keys to draw from (default: the full enumerable set)")
	seed := flag.Int64("seed", 1, "request-mix seed (same seed => same request sequence)")
	reqTimeout := flag.Duration("timeout", 5*time.Minute, "per-request client timeout")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	minHitRate := flag.Float64("min-hit-rate", -1, "fail unless cache hit rate >= this (CI gate; -1 disables)")
	max5xx := flag.Int("max-5xx", -1, "fail if more than this many 5xx responses (CI gate; -1 disables)")
	flag.Parse()
	log.SetFlags(0)

	keys := eval.ChoiceKeys()
	if *isas != "" {
		keys = strings.Split(*isas, ",")
	}
	pool := buildPool(keys, *points)
	samples, elapsed := runLoad(*addr, pool, *requests, *concurrency, *seed, *reqTimeout)
	rep := summarize(samples, elapsed, *concurrency, len(pool))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		// Atomic+durable: a CI kill mid-write must not leave a torn
		// BENCH_serve.json for the regression gate to choke on.
		if err := atomicfile.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	} else {
		os.Stdout.Write(data)
	}
	fmt.Fprintf(os.Stderr, "%d requests in %.2fs: %.1f req/s, hit rate %.3f, warm speedup %.1fx\n",
		rep.Requests, rep.DurationS, rep.Throughput, rep.Cache.HitRate, rep.WarmSpeedup)

	fail := false
	if *minHitRate >= 0 && rep.Cache.HitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "FAIL: cache hit rate %.3f below floor %.3f\n", rep.Cache.HitRate, *minHitRate)
		fail = true
	}
	if *max5xx >= 0 {
		n := 0
		for code, c := range rep.Status {
			if len(code) == 3 && code[0] == '5' {
				n += c
			}
		}
		if n > *max5xx {
			fmt.Fprintf(os.Stderr, "FAIL: %d 5xx responses exceed limit %d\n", n, *max5xx)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}

// buildPool derives n distinct design points from the ISA keys: the first
// len(keys) points use the reference core, later ones vary the ROB/IQ of a
// valid out-of-order shape so keys stay canonical but distinct.
func buildPool(keys []string, n int) []pointSpec {
	if n < 1 {
		n = 1
	}
	pool := make([]pointSpec, 0, n)
	for i := 0; i < n; i++ {
		p := pointSpec{ISA: keys[i%len(keys)]}
		if variant := i / len(keys); variant > 0 {
			cfg := eval.ReferenceConfig()
			cfg.ROB = 64 * (1 + variant)
			cfg.IQ = 32 * (1 + variant)
			p.Config = &cfg
		}
		pool = append(pool, p)
	}
	return pool
}

func runLoad(addr string, pool []pointSpec, requests, concurrency int, seed int64, timeout time.Duration) ([]sample, time.Duration) {
	// Pre-draw the request mix so the sequence depends only on the seed,
	// not on worker scheduling.
	rng := rand.New(rand.NewSource(seed))
	picks := make([]int, requests)
	for i := range picks {
		picks[i] = rng.Intn(len(pool))
	}
	client := &http.Client{Timeout: timeout}
	samples := make([]sample, requests)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= requests {
					return
				}
				samples[i] = issue(client, addr, pool[picks[i]])
			}
		}()
	}
	wg.Wait()
	return samples, time.Since(start)
}

func issue(client *http.Client, addr string, p pointSpec) sample {
	body, _ := json.Marshal(p)
	start := time.Now()
	resp, err := client.Post(addr+"/evaluate", "application/json", bytes.NewReader(body))
	s := sample{latency: time.Since(start), status: 0}
	if err != nil {
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	var er evalResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&er); err == nil && len(er.Results) == 1 {
		s.cached = er.Results[0].Cached
		s.warm = er.Results[0].Cached || er.Results[0].Coalesced
	}
	s.latency = time.Since(start)
	return s
}

func summarize(samples []sample, elapsed time.Duration, concurrency, points int) Report {
	rep := Report{
		Requests:    len(samples),
		Concurrency: concurrency,
		Points:      points,
		Status:      map[string]int{},
	}
	lat := make([]float64, 0, len(samples))
	var total, cold, warm float64
	var nCold, nWarm int
	for _, s := range samples {
		ms := float64(s.latency.Microseconds()) / 1e3
		lat = append(lat, ms)
		total += ms
		key := fmt.Sprintf("%d", s.status)
		if s.status == 0 {
			key = "error"
		}
		rep.Status[key]++
		if s.status == http.StatusOK {
			if s.cached {
				rep.Cache.Hits++
			} else {
				rep.Cache.Misses++
			}
			if s.warm {
				warm += ms
				nWarm++
			} else {
				cold += ms
				nCold++
			}
		}
	}
	if n := rep.Cache.Hits + rep.Cache.Misses; n > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(n)
	}
	sort.Float64s(lat)
	if len(lat) > 0 {
		rep.Latency.P50 = lat[len(lat)*50/100]
		rep.Latency.P90 = lat[min(len(lat)*90/100, len(lat)-1)]
		rep.Latency.P99 = lat[min(len(lat)*99/100, len(lat)-1)]
		rep.Latency.Mean = total / float64(len(lat))
	}
	if nCold > 0 {
		rep.ColdMSMean = cold / float64(nCold)
	}
	if nWarm > 0 {
		rep.WarmMSMean = warm / float64(nWarm)
	}
	if rep.WarmMSMean > 0 && rep.ColdMSMean > 0 {
		rep.WarmSpeedup = rep.ColdMSMean / rep.WarmMSMean
	}
	rep.DurationS = elapsed.Seconds()
	if rep.DurationS > 0 {
		rep.Throughput = float64(rep.Requests) / rep.DurationS
	}
	return rep
}
